"""Integer-linear-programming encoding of claim selection (Definition 9).

Binary variables ``cs_i`` select claims and ``sr_j`` mark sections that must
be skimmed.  Constraints bound the batch size, link claims to their
sections (``sr_j >= cs_i``) and optionally cap the accumulated verification
plus reading cost.  The objective maximises training utility, or the
combined form ``t(B) - wu * sum u(c)`` when a utility weight is given.

The paper uses Gurobi; we encode the identical program for
``scipy.optimize.milp`` (HiGHS) and fall back to a greedy knapsack-style
heuristic when the MILP solver is unavailable or fails.

``cost_threshold`` semantics: ``None`` (the default) disables the cost
constraint entirely.  Any float — including ``0.0`` — is a genuine budget:
a zero budget with nonzero-cost claims and a positive minimum batch size is
infeasible and raises :class:`~repro.errors.InfeasibleSelectionError`.
Because ``0.0`` historically meant "no cap", passing it explicitly emits a
:class:`DeprecationWarning` pointing callers at ``None``.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import InfeasibleSelectionError

try:  # scipy >= 1.9
    from scipy.optimize import Bounds, LinearConstraint, milp
except ImportError:  # pragma: no cover - scipy is a hard dependency
    milp = None


@dataclass(frozen=True)
class IlpSolution:
    """Solver output: indices of selected claims and solution metadata."""

    selected_indices: tuple[int, ...]
    objective_value: float
    solver: str
    optimal: bool


def solve_claim_selection_ilp(
    utilities: Sequence[float],
    verification_costs: Sequence[float],
    claim_sections: Sequence[int],
    section_read_costs: Sequence[float],
    min_batch_size: int,
    max_batch_size: int,
    cost_threshold: float | None = None,
    utility_weight: float | None = None,
    use_milp: bool = True,
) -> IlpSolution:
    """Solve one claim-selection instance.

    Parameters mirror Definition 9: ``utilities`` are ``u(c_i)``,
    ``verification_costs`` are ``v(c_i)``, ``claim_sections`` maps each claim
    to a section index, ``section_read_costs`` are ``r(s_j)``.  When
    ``utility_weight`` is ``None`` the objective is pure utility
    maximisation subject to the cost threshold; otherwise the combined
    objective ``t(B) - wu * sum u(c)`` is minimised.  ``cost_threshold=None``
    disables the cost constraint; ``0.0`` is a genuine zero budget (and
    deprecated as a way of saying "no cap").
    """
    claim_count = len(utilities)
    if claim_count != len(verification_costs) or claim_count != len(claim_sections):
        raise ValueError("utilities, costs and sections must be aligned")
    if claim_count == 0:
        raise InfeasibleSelectionError(
            "no unverified claims to select from", constraint="pool"
        )
    section_count = len(section_read_costs)
    if any(section < 0 or section >= section_count for section in claim_sections):
        raise ValueError("claim_sections references an unknown section index")
    cost_threshold = _check_cost_threshold(cost_threshold)
    min_batch_size = max(0, min_batch_size)
    if min_batch_size > claim_count:
        raise InfeasibleSelectionError(
            f"minimum batch size {min_batch_size} exceeds the pending pool "
            f"({claim_count} claims)",
            constraint="min_batch_size",
        )
    max_batch_size = min(max_batch_size, claim_count)
    if min_batch_size > max_batch_size:
        raise InfeasibleSelectionError(
            f"batch bounds are infeasible: [{min_batch_size}, {max_batch_size}]",
            constraint="batch_bounds",
        )
    if use_milp and milp is not None:
        solution = _solve_with_milp(
            utilities,
            verification_costs,
            claim_sections,
            section_read_costs,
            min_batch_size,
            max_batch_size,
            cost_threshold,
            utility_weight,
        )
        if solution is not None:
            return solution
    return _solve_greedy(
        utilities,
        verification_costs,
        claim_sections,
        section_read_costs,
        min_batch_size,
        max_batch_size,
        cost_threshold,
        utility_weight,
    )


def _check_cost_threshold(cost_threshold: float | None) -> float | None:
    """Validate the threshold and warn about the deprecated ``0.0`` spelling."""
    if cost_threshold is None:
        return None
    if cost_threshold < 0:
        raise ValueError("cost_threshold must be non-negative (or None)")
    if cost_threshold == 0.0:
        warnings.warn(
            "cost_threshold=0.0 now means a genuine zero budget; pass None to "
            "disable the cost constraint",
            DeprecationWarning,
            stacklevel=3,
        )
    return float(cost_threshold)


# --------------------------------------------------------------------------- #
# MILP encoding
# --------------------------------------------------------------------------- #
def _solve_with_milp(
    utilities: Sequence[float],
    verification_costs: Sequence[float],
    claim_sections: Sequence[int],
    section_read_costs: Sequence[float],
    min_batch_size: int,
    max_batch_size: int,
    cost_threshold: float | None,
    utility_weight: float | None,
) -> IlpSolution | None:
    claim_count = len(utilities)
    section_count = len(section_read_costs)
    variable_count = claim_count + section_count

    # Objective: minimise either -sum(u_i * cs_i), or the combined
    # t(B) - wu * sum(u_i * cs_i) where t(B) includes section reading costs.
    objective = np.zeros(variable_count)
    if utility_weight is None:
        objective[:claim_count] = -np.asarray(utilities, dtype=float)
    else:
        objective[:claim_count] = (
            np.asarray(verification_costs, dtype=float)
            - utility_weight * np.asarray(utilities, dtype=float)
        )
        objective[claim_count:] = np.asarray(section_read_costs, dtype=float)

    constraint_rows: list[np.ndarray] = []
    lower_bounds: list[float] = []
    upper_bounds: list[float] = []

    # Batch size: bl <= sum cs_i <= bu.
    size_row = np.zeros(variable_count)
    size_row[:claim_count] = 1.0
    constraint_rows.append(size_row)
    lower_bounds.append(float(min_batch_size))
    upper_bounds.append(float(max_batch_size))

    # Linking: cs_i - sr_{s(i)} <= 0.
    for claim_index, section_index in enumerate(claim_sections):
        row = np.zeros(variable_count)
        row[claim_index] = 1.0
        row[claim_count + section_index] = -1.0
        constraint_rows.append(row)
        lower_bounds.append(-np.inf)
        upper_bounds.append(0.0)

    # Cost threshold: sum cs_i v_i + sum sr_j r_j <= tm.
    if cost_threshold is not None:
        cost_row = np.zeros(variable_count)
        cost_row[:claim_count] = np.asarray(verification_costs, dtype=float)
        cost_row[claim_count:] = np.asarray(section_read_costs, dtype=float)
        constraint_rows.append(cost_row)
        lower_bounds.append(-np.inf)
        upper_bounds.append(float(cost_threshold))

    constraints = LinearConstraint(
        np.vstack(constraint_rows), np.asarray(lower_bounds), np.asarray(upper_bounds)
    )
    result = milp(
        c=objective,
        constraints=constraints,
        integrality=np.ones(variable_count),
        bounds=Bounds(0, 1),
    )
    if not result.success or result.x is None:
        return None
    selection = tuple(
        index for index in range(claim_count) if result.x[index] > 0.5
    )
    return IlpSolution(
        selected_indices=selection,
        objective_value=float(result.fun),
        solver="scipy-milp",
        optimal=True,
    )


# --------------------------------------------------------------------------- #
# greedy fallback
# --------------------------------------------------------------------------- #
def _solve_greedy(
    utilities: Sequence[float],
    verification_costs: Sequence[float],
    claim_sections: Sequence[int],
    section_read_costs: Sequence[float],
    min_batch_size: int,
    max_batch_size: int,
    cost_threshold: float | None,
    utility_weight: float | None,
) -> IlpSolution:
    """Greedy knapsack-style heuristic used when the MILP solver is unavailable.

    Claims are taken best-score first; ties break by lowest claim index so
    equal-score claims select in the same order on every platform (matching
    the batched k-NN convention).  Candidates that would exceed the cost
    threshold are skipped — not stopped at — so a cheaper claim further down
    the ranking can still fill the batch; if the budget cannot accommodate
    ``min_batch_size`` claims the instance is infeasible and raises.
    """
    claim_count = len(utilities)
    selected: list[int] = []
    opened_sections: set[int] = set()
    accumulated_cost = 0.0

    def marginal_cost(index: int) -> float:
        extra = float(verification_costs[index])
        if claim_sections[index] not in opened_sections:
            extra += float(section_read_costs[claim_sections[index]])
        return extra

    def score(index: int) -> float:
        if utility_weight is None:
            cost = marginal_cost(index)
            return utilities[index] / cost if cost > 0 else utilities[index]
        return utility_weight * utilities[index] - marginal_cost(index)

    remaining = list(range(claim_count))
    while remaining and len(selected) < max_batch_size:
        remaining.sort(key=lambda index: (-score(index), index))
        chosen_position: int | None = None
        for position, candidate in enumerate(remaining):
            extra = marginal_cost(candidate)
            if (
                cost_threshold is not None
                and accumulated_cost + extra > cost_threshold
            ):
                continue
            chosen_position = position
            break
        if chosen_position is None:
            break
        candidate = remaining.pop(chosen_position)
        accumulated_cost += marginal_cost(candidate)
        selected.append(candidate)
        opened_sections.add(claim_sections[candidate])
    if len(selected) < min_batch_size:
        raise InfeasibleSelectionError(
            f"greedy selection found only {len(selected)} claims within the "
            f"cost threshold; the minimum batch size is {min_batch_size}",
            constraint="cost_threshold",
        )
    selected.sort()
    objective = _selection_objective(
        selected,
        utilities,
        verification_costs,
        claim_sections,
        section_read_costs,
        utility_weight,
    )
    return IlpSolution(
        selected_indices=tuple(selected),
        objective_value=float(objective),
        solver="greedy",
        optimal=False,
    )


def _selection_objective(
    selected: Sequence[int],
    utilities: Sequence[float],
    verification_costs: Sequence[float],
    claim_sections: Sequence[int],
    section_read_costs: Sequence[float],
    utility_weight: float | None,
) -> float:
    """The MILP objective value of a concrete selection (minimise form)."""
    if utility_weight is None:
        return -sum(utilities[index] for index in selected)
    sections = {claim_sections[index] for index in selected}
    return sum(
        verification_costs[index] - utility_weight * utilities[index]
        for index in selected
    ) + sum(section_read_costs[section] for section in sections)
