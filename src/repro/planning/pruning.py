"""Pruning power and greedy screen selection (Theorems 3–6).

A query candidate is described by its value for each query property
(relation, key, attribute, formula).  Asking about a property prunes every
candidate whose value for that property differs from the answer the checker
confirms.  Since the answer is unknown in advance, the *expected* number of
pruned candidates — the pruning power of Definition 5 — is computed from the
classifier's answer probabilities, and the sub-modular structure of that
function (Theorem 4) lets a greedy selection of properties come within
``1 - 1/e`` of the optimum (Theorem 5).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.claims.model import ClaimProperty
from repro.errors import PlanningError


class PruningPowerCalculator:
    """Computes pruning power for sets of query properties.

    Parameters
    ----------
    candidates:
        One mapping per candidate query, from property to that candidate's
        value for the property (e.g. ``{RELATION: "GED", KEY: "PGElecDemand"}``).
        Properties missing from a candidate's mapping never prune it.
    answer_probabilities:
        For every property, the classifier's probability of each possible
        answer (``Pr(a_i_s correct | M)`` in Theorem 3).
    """

    def __init__(
        self,
        candidates: Sequence[Mapping[ClaimProperty, str]],
        answer_probabilities: Mapping[ClaimProperty, Mapping[str, float]],
    ) -> None:
        self._candidates = [dict(candidate) for candidate in candidates]
        self._probabilities = {
            claim_property: dict(distribution)
            for claim_property, distribution in answer_probabilities.items()
        }

    # ------------------------------------------------------------------ #
    # Theorem 3
    # ------------------------------------------------------------------ #
    def survival_probability(
        self, candidate: Mapping[ClaimProperty, str], properties: Sequence[ClaimProperty]
    ) -> float:
        """Probability that ``candidate`` is *not* pruned by asking ``properties``."""
        survival = 1.0
        for claim_property in properties:
            distribution = self._probabilities.get(claim_property)
            if distribution is None:
                continue
            value = candidate.get(claim_property)
            if value is None:
                # The candidate does not constrain this property: no answer
                # about it can exclude the candidate.
                continue
            survival *= distribution.get(value, 0.0)
        return survival

    def pruning_power(self, properties: Sequence[ClaimProperty]) -> float:
        """Expected number of pruned candidates, ``P(S, Q, M)`` of Theorem 3."""
        unique_properties = list(dict.fromkeys(properties))
        return sum(
            1.0 - self.survival_probability(candidate, unique_properties)
            for candidate in self._candidates
        )

    # ------------------------------------------------------------------ #
    # Theorem 5: greedy selection
    # ------------------------------------------------------------------ #
    def greedy_select(
        self,
        available: Sequence[ClaimProperty],
        count: int,
    ) -> list[ClaimProperty]:
        """Greedily pick up to ``count`` properties maximising pruning power.

        At each step the property with the largest marginal gain joins the
        selection; sub-modularity (Theorem 4) guarantees the result is within
        ``1 - 1/e`` of the optimal selection (Theorem 5).
        """
        if count < 0:
            raise PlanningError("cannot select a negative number of screens")
        remaining = list(dict.fromkeys(available))
        selected: list[ClaimProperty] = []
        current_power = 0.0
        while remaining and len(selected) < count:
            best_property = None
            best_power = current_power
            for claim_property in remaining:
                power = self.pruning_power(selected + [claim_property])
                if power > best_power + 1e-12:
                    best_power = power
                    best_property = claim_property
            if best_property is None:
                # No property adds pruning power; showing more screens would
                # only cost checker time.
                break
            selected.append(best_property)
            remaining.remove(best_property)
            current_power = best_power
        return selected

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def candidate_count(self) -> int:
        return len(self._candidates)

    def property_values(self, claim_property: ClaimProperty) -> set[str]:
        """Distinct candidate values for one property."""
        return {
            candidate[claim_property]
            for candidate in self._candidates
            if claim_property in candidate
        }
