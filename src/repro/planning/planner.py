"""The question-planning facade used by the main verification loop.

``QuestionPlanner`` bundles the two planning tasks of Section 5: building
the optimal question sequence for one claim (screens, options, final query
candidates) and selecting the next batch of claims to verify.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.claims.model import Claim, ClaimProperty
from repro.config import ScrutinizerConfig
from repro.ml.base import Prediction
from repro.pipeline.batch import ClaimBatchPredictions
from repro.pipeline.scoring import estimate_costs, estimate_scores, estimate_utilities
from repro.planning.batching import BatchCandidate, ClaimSelection, select_claim_batch
from repro.planning.costmodel import VerificationCostModel
from repro.planning.engine import PlannerEngine
from repro.planning.options import options_from_prediction, order_options
from repro.planning.pruning import PruningPowerCalculator
from repro.planning.screens import QueryOption, QuestionPlan, Screen
from repro.planning.utility import claim_training_utility, expected_claim_cost
from repro.translation.querygen import QueryGenerationResult


class QuestionPlanner:
    """Cost-based planner for questions and claim batches."""

    def __init__(
        self,
        config: ScrutinizerConfig | None = None,
        engine: PlannerEngine | None = None,
    ) -> None:
        self.config = config if config is not None else ScrutinizerConfig()
        self.cost_model = VerificationCostModel(self.config.cost_model)
        #: When set, batch selection routes through the shared
        #: :class:`~repro.planning.engine.PlannerEngine` (dominance pruning,
        #: aggregated encoding, skeleton caching) instead of re-encoding the
        #: full MILP every round.  Both paths are exact.
        self.engine = engine

    # ------------------------------------------------------------------ #
    # single-claim question planning (Section 5.1)
    # ------------------------------------------------------------------ #
    def plan_questions(
        self,
        claim: Claim,
        predictions: Mapping[ClaimProperty, Prediction],
        generation: QueryGenerationResult | None = None,
        screen_count: int | None = None,
        option_count: int | None = None,
    ) -> QuestionPlan:
        """Build the question sequence for one claim.

        Screens are chosen greedily by pruning power over the candidate
        queries produced by tentative execution; when no candidates are
        available yet (e.g. before the context is validated) every property
        is a potential screen and selection falls back to uncertainty order.
        """
        if screen_count is None:
            screen_count = min(
                self.config.resolved_screen_count(), len(ClaimProperty.ordered())
            )
        if option_count is None:
            option_count = self.config.resolved_option_count()

        candidate_descriptions = (
            _describe_candidates(generation) if generation is not None else []
        )
        answer_probabilities = {
            claim_property: prediction.as_dict()
            for claim_property, prediction in predictions.items()
        }
        pruning_power = 0.0
        if candidate_descriptions:
            calculator = PruningPowerCalculator(candidate_descriptions, answer_probabilities)
            selected_properties = calculator.greedy_select(
                list(ClaimProperty.ordered()), screen_count
            )
            pruning_power = calculator.pruning_power(selected_properties)
            if not selected_properties:
                selected_properties = self._uncertainty_order(predictions)[:screen_count]
        else:
            selected_properties = self._uncertainty_order(predictions)[:screen_count]

        screens = []
        expected_cost = 0.0
        for claim_property in selected_properties:
            prediction = predictions[claim_property]
            options = order_options(options_from_prediction(prediction, option_count))
            screens.append(Screen(claim_property=claim_property, options=tuple(options)))
            expected_cost += self.cost_model.expected_property_screen_cost(
                [option.probability for option in options]
            )

        query_options = self._query_options(generation, option_count)
        expected_cost += self.cost_model.expected_final_screen_cost(
            [option.probability for option in query_options]
        )
        return QuestionPlan(
            claim_id=claim.claim_id,
            screens=tuple(screens),
            query_options=tuple(query_options),
            expected_cost=expected_cost,
            pruning_power=pruning_power,
        )

    @staticmethod
    def _uncertainty_order(
        predictions: Mapping[ClaimProperty, Prediction]
    ) -> list[ClaimProperty]:
        """Properties ordered from most to least uncertain prediction."""
        return [
            claim_property
            for claim_property, _ in sorted(
                predictions.items(), key=lambda item: -item[1].entropy()
            )
        ]

    def _query_options(
        self, generation: QueryGenerationResult | None, option_count: int
    ) -> list[QueryOption]:
        if generation is None:
            return []
        ranked = list(generation.candidates) + list(generation.alternatives)
        # Candidates whose tentative results coincide carry no extra
        # information for the checker; keep the first of each distinct value
        # so the displayed list covers more alternatives.
        deduplicated = []
        seen_values: set[float] = set()
        for candidate in ranked:
            rounded = round(candidate.value, 9) if candidate.value is not None else None
            if rounded is not None and rounded in seen_values:
                continue
            if rounded is not None:
                seen_values.add(rounded)
            deduplicated.append(candidate)
        ranked = deduplicated[:option_count]
        if not ranked:
            return []
        # Matching candidates are far more likely to be the intended query;
        # weight them three times higher before normalising.
        weights = [3.0 if candidate.matches_parameter else 1.0 for candidate in ranked]
        total = sum(weights)
        return [
            QueryOption(
                sql=candidate.sql,
                value=candidate.value,
                probability=weight / total if total > 0 else 0.0,
                matches_parameter=candidate.matches_parameter,
            )
            for candidate, weight in zip(ranked, weights)
        ]

    # ------------------------------------------------------------------ #
    # per-claim estimates used by batching
    # ------------------------------------------------------------------ #
    def estimate_cost(self, predictions: Mapping[ClaimProperty, Prediction]) -> float:
        """Expected verification cost ``v(c)`` for one claim."""
        return expected_claim_cost(
            predictions,
            option_count=self.config.resolved_option_count(),
            screen_count=min(
                self.config.resolved_screen_count(), len(ClaimProperty.ordered())
            ),
            cost_model=self.cost_model,
        )

    def estimate_utility(self, predictions: Mapping[ClaimProperty, Prediction]) -> float:
        """Training utility ``u(c)`` for one claim."""
        return claim_training_utility(predictions)

    def estimate_costs_batch(self, batch: ClaimBatchPredictions) -> np.ndarray:
        """Expected verification cost for every claim of a batch at once.

        Vectorized equivalent of calling :meth:`estimate_cost` per claim:
        the per-batch planning hot path scores all pending claims from the
        batch's probability matrices instead of dicts-of-dicts.
        """
        return estimate_costs(
            batch,
            option_count=self.config.resolved_option_count(),
            screen_count=min(
                self.config.resolved_screen_count(), len(ClaimProperty.ordered())
            ),
            cost_model=self.cost_model,
        )

    def estimate_utilities_batch(self, batch: ClaimBatchPredictions) -> np.ndarray:
        """Training utility for every claim of a batch at once."""
        return estimate_utilities(batch)

    def estimate_scores_batch(
        self, batch: ClaimBatchPredictions
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(costs, utilities)`` for every claim of a batch in one pass."""
        return estimate_scores(
            batch,
            option_count=self.config.resolved_option_count(),
            screen_count=min(
                self.config.resolved_screen_count(), len(ClaimProperty.ordered())
            ),
            cost_model=self.cost_model,
        )

    # ------------------------------------------------------------------ #
    # claim ordering (Section 5.2)
    # ------------------------------------------------------------------ #
    def plan_batch(
        self,
        candidates: Sequence[BatchCandidate],
        section_read_costs: Mapping[str, float],
        document_order: Sequence[str] | None = None,
    ) -> ClaimSelection:
        """Select the next batch of claims to verify.

        With claim ordering disabled (the *Sequential* baseline) the first
        ``max_batch_size`` claims in document order are returned instead of
        solving the ILP.
        """
        if not self.config.claim_ordering:
            ordered = list(candidates)
            if document_order is not None:
                position = {claim_id: index for index, claim_id in enumerate(document_order)}
                ordered.sort(key=lambda candidate: position.get(candidate.claim_id, 1 << 30))
            chosen = ordered[: self.config.batching.max_batch_size]
            sections = tuple(sorted({candidate.section_id for candidate in chosen}))
            return ClaimSelection(
                claim_ids=tuple(candidate.claim_id for candidate in chosen),
                total_cost=sum(candidate.verification_cost for candidate in chosen)
                + sum(section_read_costs.get(section, 0.0) for section in sections),
                total_utility=sum(candidate.training_utility for candidate in chosen),
                sections_read=sections,
                solver="sequential",
            )
        if self.engine is not None:
            return self.engine.plan(
                candidates, dict(section_read_costs), config=self.config.batching
            )
        return select_claim_batch(
            candidates=candidates,
            section_read_costs=dict(section_read_costs),
            config=self.config.batching,
        )


def _describe_candidates(generation: QueryGenerationResult) -> list[dict[ClaimProperty, str]]:
    """Property-wise description of each candidate query for pruning power."""
    descriptions: list[dict[ClaimProperty, str]] = []
    for candidate in list(generation.candidates) + list(generation.alternatives):
        instantiated = candidate.instantiated
        references = list(instantiated.value_assignment.values())
        description: dict[ClaimProperty, str] = {
            ClaimProperty.FORMULA: instantiated.formula.render(),
        }
        if references:
            description[ClaimProperty.RELATION] = references[0].relation
            description[ClaimProperty.KEY] = references[0].key
            description[ClaimProperty.ATTRIBUTE] = references[0].attribute
        descriptions.append(description)
    return descriptions
