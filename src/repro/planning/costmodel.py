"""The verification cost model of Section 5.1.

Constants ``vp``/``vf`` (verifying a property option / a full query option)
and ``sp``/``sf`` (suggesting a property answer / suggesting the full query)
drive every planning decision.  Theorem 1 bounds the relative verification
overhead of Scrutinizer by ``(nop * vf + nsc * (vp + sp)) / sf`` and
Corollary 1 picks ``nop`` and ``nsc`` so the bound equals three.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.config import CostModelConfig


@dataclass(frozen=True)
class ScreenBudget:
    """Number of screens and options chosen for a claim."""

    screen_count: int
    option_count: int


class VerificationCostModel:
    """Evaluates verification costs for question plans."""

    def __init__(self, config: CostModelConfig | None = None) -> None:
        self.config = config if config is not None else CostModelConfig()

    # ------------------------------------------------------------------ #
    # constants
    # ------------------------------------------------------------------ #
    @property
    def property_verify_cost(self) -> float:
        return self.config.property_verify_cost

    @property
    def query_verify_cost(self) -> float:
        return self.config.query_verify_cost

    @property
    def property_suggest_cost(self) -> float:
        return self.config.property_suggest_cost

    @property
    def query_suggest_cost(self) -> float:
        return self.config.query_suggest_cost

    @property
    def manual_cost(self) -> float:
        """Cost of verifying a claim without Scrutinizer (suggesting the query)."""
        return self.config.query_suggest_cost

    # ------------------------------------------------------------------ #
    # Theorem 1 / Corollary 1
    # ------------------------------------------------------------------ #
    def worst_case_overhead(self, option_count: int, screen_count: int) -> float:
        """Relative verification overhead bound of Theorem 1."""
        return self.config.worst_case_overhead_factor(option_count, screen_count)

    def corollary_budget(self) -> ScreenBudget:
        """The ``nop = sf/vf``, ``nsc = sf/(vp+sp)`` setting of Corollary 1."""
        return ScreenBudget(
            screen_count=self.config.default_screen_count,
            option_count=self.config.default_option_count,
        )

    # ------------------------------------------------------------------ #
    # expected costs (Theorem 2 and derived quantities)
    # ------------------------------------------------------------------ #
    def expected_property_screen_cost(self, option_probabilities: Sequence[float]) -> float:
        """Expected cost of one property screen.

        Reading cost follows Theorem 2 (``vp * sum_i (1 - sum_{j<i} p_j)``)
        and, with probability that no displayed option is correct, the
        worker additionally suggests an answer at cost ``sp``.
        """
        reading = expected_reading_cost(option_probabilities, self.property_verify_cost)
        miss_probability = max(0.0, 1.0 - min(1.0, sum(option_probabilities)))
        return reading + miss_probability * self.property_suggest_cost

    def expected_final_screen_cost(self, option_probabilities: Sequence[float]) -> float:
        """Expected cost of the final screen showing full candidate queries."""
        reading = expected_reading_cost(option_probabilities, self.query_verify_cost)
        miss_probability = max(0.0, 1.0 - min(1.0, sum(option_probabilities)))
        return reading + miss_probability * self.query_suggest_cost

    def worst_case_claim_cost(self, option_count: int, screen_count: int) -> float:
        """Absolute worst-case cost of verifying one claim with Scrutinizer."""
        return (
            option_count * self.query_verify_cost
            + screen_count * (self.property_verify_cost + self.property_suggest_cost)
        )


def expected_reading_cost(option_probabilities: Sequence[float], per_option_cost: float) -> float:
    """Expected reading cost of an ordered option list (Theorem 2).

    ``vp * sum_{i=1..m} (1 - sum_{j<i} p_j)``: the ``i``-th option is read
    only if none of the previous options was the correct one.
    """
    if per_option_cost < 0:
        raise ValueError("per-option cost must be non-negative")
    total = 0.0
    cumulative = 0.0
    for probability in option_probabilities:
        total += per_option_cost * max(0.0, 1.0 - cumulative)
        cumulative += max(0.0, probability)
    return total
