"""Per-claim training utility and expected verification cost.

Claim ordering (Section 5.2) weighs two quantities for every unverified
claim: its value as a training sample — the summed entropy of the property
classifiers' predicted distributions (Definition 7) — and its expected
verification cost under the question-planning cost model.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.claims.model import ClaimProperty
from repro.config import CostModelConfig
from repro.ml.base import Prediction
from repro.planning.costmodel import VerificationCostModel


def claim_training_utility(predictions: Mapping[ClaimProperty, Prediction]) -> float:
    """Training utility ``u(c)``: summed prediction entropy over the models."""
    return sum(prediction.entropy() for prediction in predictions.values())


def expected_claim_cost(
    predictions: Mapping[ClaimProperty, Prediction],
    option_count: int,
    screen_count: int | None = None,
    cost_model: VerificationCostModel | None = None,
    query_option_count: int | None = None,
) -> float:
    """Expected verification cost ``v(c)`` of one claim.

    The claim is verified through up to ``screen_count`` property screens
    (the most uncertain properties are asked first, mirroring the planner)
    followed by a final screen whose hit probability is approximated by the
    product of the per-property hit probabilities — if every property was
    confirmed among the displayed options, the generated query is very
    likely among the displayed candidates.
    """
    model = cost_model if cost_model is not None else VerificationCostModel(CostModelConfig())
    if screen_count is None:
        screen_count = model.corollary_budget().screen_count
    if query_option_count is None:
        query_option_count = option_count
    ordered = sorted(
        predictions.items(), key=lambda item: -item[1].entropy()
    )[: max(0, screen_count)]
    total = 0.0
    joint_hit = 1.0
    for _, prediction in ordered:
        probabilities = [probability for _, probability in prediction.top_k(option_count)]
        total += model.expected_property_screen_cost(probabilities)
        joint_hit *= min(1.0, sum(probabilities))
    # Final screen: assume the correct query appears with the joint hit
    # probability, spread uniformly over the displayed query options.
    if query_option_count > 0:
        final_probabilities = [joint_hit / query_option_count] * query_option_count
    else:
        final_probabilities = []
    total += model.expected_final_screen_cost(final_probabilities)
    return total


def manual_claim_cost(cost_model: VerificationCostModel | None = None) -> float:
    """Cost of verifying one claim without Scrutinizer (``sf``)."""
    model = cost_model if cost_model is not None else VerificationCostModel(CostModelConfig())
    return model.manual_cost
