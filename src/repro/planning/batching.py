"""Claim-batch selection (Definitions 8–9, Theorem 7).

A batch of claims costs the sum of their expected verification costs plus
one reading cost per distinct section touched.  Subject to batch-size and
cost-threshold constraints, the selection maximises accumulated training
utility — an NP-hard problem (knapsack reduction, Theorem 7) delegated to
the ILP encoding of :mod:`repro.planning.ilp`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.config import BatchingConfig
from repro.errors import InfeasibleSelectionError
from repro.planning.ilp import IlpSolution, solve_claim_selection_ilp


@dataclass(frozen=True)
class BatchCandidate:
    """One unverified claim as seen by the batch selector."""

    claim_id: str
    section_id: str
    verification_cost: float
    training_utility: float

    def __post_init__(self) -> None:
        if self.verification_cost < 0:
            raise ValueError("verification cost must be non-negative")
        if self.training_utility < 0:
            raise ValueError("training utility must be non-negative")


@dataclass(frozen=True)
class ClaimSelection:
    """The outcome of one batch-selection round."""

    claim_ids: tuple[str, ...]
    total_cost: float
    total_utility: float
    sections_read: tuple[str, ...]
    solver: str

    @property
    def batch_size(self) -> int:
        return len(self.claim_ids)


def check_batch_feasibility(candidate_count: int, config: BatchingConfig) -> None:
    """Shared feasibility preamble of both batch planners.

    The pool must be non-empty, and under a genuine cost threshold the
    configured minimum batch must be fillable — previously the greedy
    fallback silently returned a short batch there.  In the pinned regime
    (no cost threshold) ``min_batch_size`` is replaced by the pin, so a
    final partial batch smaller than the configured minimum stays legal.
    Both :func:`select_claim_batch` and
    :meth:`repro.planning.engine.PlannerEngine.plan` call this, so the
    infeasibility contract lives in exactly one place.
    """
    if candidate_count == 0:
        raise InfeasibleSelectionError("no unverified claims remain", constraint="pool")
    if config.cost_threshold is not None and config.min_batch_size > candidate_count:
        raise InfeasibleSelectionError(
            f"minimum batch size {config.min_batch_size} exceeds the pending "
            f"pool ({candidate_count} claims)",
            constraint="min_batch_size",
        )


def batch_cost(
    candidates: Sequence[BatchCandidate],
    section_read_costs: dict[str, float],
) -> float:
    """Total cost ``t(C)`` of a batch (Definition 8)."""
    verification = sum(candidate.verification_cost for candidate in candidates)
    sections = {candidate.section_id for candidate in candidates}
    reading = sum(section_read_costs.get(section, 0.0) for section in sections)
    return verification + reading


def select_claim_batch(
    candidates: Sequence[BatchCandidate],
    section_read_costs: dict[str, float],
    config: BatchingConfig | None = None,
    use_milp: bool = True,
) -> ClaimSelection:
    """Select the next batch of claims to verify (Definition 9).

    ``section_read_costs`` maps section ids to their skimming cost ``r(s)``;
    sections not listed default to the config's ``section_read_cost``.
    """
    config = config if config is not None else BatchingConfig()
    check_batch_feasibility(len(candidates), config)

    min_batch_size = config.min_batch_size
    max_batch_size = config.max_batch_size
    if config.cost_threshold is None:
        # Without a cost threshold the combined objective degenerates into
        # "select as few claims as possible"; the paper instead works with
        # fixed-size batches (100 claims per retraining round), so we pin the
        # batch size and let the objective choose *which* claims fill it.
        min_batch_size = min(max_batch_size, len(candidates))

    section_ids = sorted({candidate.section_id for candidate in candidates})
    section_index = {section_id: index for index, section_id in enumerate(section_ids)}
    read_costs = [
        section_read_costs.get(section_id, config.section_read_cost)
        for section_id in section_ids
    ]
    solution: IlpSolution = solve_claim_selection_ilp(
        utilities=[candidate.training_utility for candidate in candidates],
        verification_costs=[candidate.verification_cost for candidate in candidates],
        claim_sections=[section_index[candidate.section_id] for candidate in candidates],
        section_read_costs=read_costs,
        min_batch_size=min_batch_size,
        max_batch_size=max_batch_size,
        cost_threshold=config.cost_threshold,
        utility_weight=config.utility_weight if config.utility_weight > 0 else None,
        use_milp=use_milp,
    )
    selected = [candidates[index] for index in solution.selected_indices]
    if not selected and config.cost_threshold is None:
        # Degenerate objective (e.g. zero utilities): fall back to document
        # order.  Under a genuine cost threshold an empty selection stands —
        # filling the batch anyway could blow the budget.
        selected = list(candidates[: config.max_batch_size])
    sections_read = tuple(sorted({candidate.section_id for candidate in selected}))
    return ClaimSelection(
        claim_ids=tuple(candidate.claim_id for candidate in selected),
        total_cost=batch_cost(selected, section_read_costs),
        total_utility=sum(candidate.training_utility for candidate in selected),
        sections_read=sections_read,
        solver=solution.solver,
    )
