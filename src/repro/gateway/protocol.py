"""Newline-delimited JSON wire protocol for the gateway.

One frame per line, each a single JSON object with a ``type`` field.
Client → server frames: ``submit``, ``subscribe``, ``report``,
``status``, ``evict``, ``bye``.  Server → client frames: ``ack``,
``error``, ``result``, ``complete``, ``report``, ``status``,
``evicted``, ``bye``.  Request/response frames echo the client's
``request_id``; ``result``/``complete`` frames are streamed
asynchronously to every connection subscribed to the tenant.

Load-shedding is expressed as typed ``error`` frames instead of
unbounded queuing::

    {"type": "error", "request_id": "1", "code": "backpressure",
     "retryable": true, "message": "submission backlog is full"}

``code`` maps onto the :mod:`repro.errors` serving taxonomy so the
asyncio client can re-raise the same exception the in-process caller
would have seen.
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from repro.errors import (
    AdmissionError,
    BackpressureError,
    ClaimError,
    GatewayError,
    ProtocolError,
    ReproError,
    UnknownTenantError,
)

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "decode_frame",
    "encode_frame",
    "error_code_for",
    "error_frame",
    "exception_for_error",
]

#: A single NDJSON line (including the trailing newline) may not exceed
#: this; longer submissions must be split by the client.
MAX_FRAME_BYTES = 1 << 20

ERROR_BACKPRESSURE = "backpressure"
ERROR_ADMISSION = "admission"
ERROR_UNKNOWN_CLAIM = "unknown-claim"
ERROR_UNKNOWN_TENANT = "unknown-tenant"
ERROR_BAD_FRAME = "bad-frame"
ERROR_SERVER_CLOSED = "server-closed"
ERROR_INTERNAL = "internal"

#: code → (exception type, retryable)
ERROR_CODES: dict[str, tuple[type[ReproError], bool]] = {
    ERROR_BACKPRESSURE: (BackpressureError, True),
    ERROR_ADMISSION: (AdmissionError, False),
    ERROR_UNKNOWN_CLAIM: (ClaimError, False),
    ERROR_UNKNOWN_TENANT: (UnknownTenantError, False),
    ERROR_BAD_FRAME: (ProtocolError, False),
    ERROR_SERVER_CLOSED: (GatewayError, True),
    ERROR_INTERNAL: (GatewayError, False),
}


def encode_frame(frame: Mapping) -> bytes:
    """Serialize one frame to an NDJSON line."""
    try:
        line = json.dumps(dict(frame), separators=(",", ":"), sort_keys=True)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"unencodable frame: {error}") from error
    data = line.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(data)} bytes (max {MAX_FRAME_BYTES})")
    return data


def decode_frame(line: bytes) -> dict:
    """Parse one NDJSON line into a frame dict, validating the envelope."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame too large: {len(line)} bytes (max {MAX_FRAME_BYTES})")
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object")
    kind = frame.get("type")
    if not isinstance(kind, str) or not kind:
        raise ProtocolError("frame missing string 'type'")
    return frame


def error_frame(
    code: str,
    message: str,
    *,
    request_id: str | None = None,
    retryable: bool | None = None,
) -> dict:
    """Build a typed ``error`` frame; ``retryable`` defaults by code."""
    if retryable is None:
        retryable = ERROR_CODES.get(code, (GatewayError, False))[1]
    frame = {"type": "error", "code": code, "message": message, "retryable": retryable}
    if request_id is not None:
        frame["request_id"] = request_id
    return frame


def error_code_for(error: ReproError) -> str:
    """The wire code the gateway sheds ``error`` with (most specific wins)."""
    if isinstance(error, BackpressureError):
        return ERROR_BACKPRESSURE
    if isinstance(error, UnknownTenantError):
        return ERROR_UNKNOWN_TENANT
    if isinstance(error, AdmissionError):
        return ERROR_ADMISSION
    if isinstance(error, ClaimError):
        return ERROR_UNKNOWN_CLAIM
    if isinstance(error, ProtocolError):
        return ERROR_BAD_FRAME
    if isinstance(error, GatewayError):
        return ERROR_SERVER_CLOSED
    return ERROR_INTERNAL


def exception_for_error(frame: Mapping) -> ReproError:
    """Reconstruct the taxonomy exception a server ``error`` frame names."""
    code = frame.get("code", ERROR_INTERNAL)
    message = frame.get("message", "gateway error")
    if code == ERROR_UNKNOWN_TENANT:
        tenant = frame.get("tenant_id")
        if isinstance(tenant, str):
            return UnknownTenantError(tenant)
        return AdmissionError(message)
    exc_type = ERROR_CODES.get(code, (GatewayError, False))[0]
    return exc_type(f"[{code}] {message}")
