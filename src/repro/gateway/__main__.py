"""``python -m repro.gateway`` dispatches to :mod:`repro.gateway.cli`."""

import sys

from repro.gateway.cli import main

if __name__ == "__main__":
    sys.exit(main())
