"""Write-ahead submission journal with CRC framing and fsync batching.

Every submission the gateway accepts is appended here *before* the
client receives its ack, so a ``SIGKILL`` after the ack can always be
repaired by replaying the journal into a fresh
:class:`~repro.serving.server.VerificationServer`.

Record framing (one record, append-only)::

    +----------------+----------------+----------------------+
    | length: u32 BE | crc32: u32 BE  | payload (JSON, UTF-8)|
    +----------------+----------------+----------------------+

The payload is a single JSON object ``{"seq", "tenant_id",
"claim_ids", "ts"}``.  ``seq`` is a monotonically increasing record
number spanning segments; ``ts`` is a wall-clock stamp kept purely as
operator metadata (this module carries the checker's wall-clock
exemption — nothing replays or orders by ``ts``).

Segments are files named ``journal-<index>.log``.  A writer never
appends to an existing segment: each open starts a fresh segment, so a
corrupt or truncated tail left by a crash is never written past.  The
reader (:func:`scan_journal`) walks segments in index order and applies
the recovery contract:

* CRC mismatch with a plausible frame → skip that one record, keep
  scanning (counted in ``corrupt_records``),
* short header / implausible length / short payload → truncated tail;
  stop this segment, continue with the next (counted in
  ``truncated_tails``),
* never raise for damage unless ``strict=True``.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import JournalCorruptionError, JournalError

__all__ = [
    "JournalRecord",
    "JournalScan",
    "JournalWriter",
    "MAX_RECORD_BYTES",
    "scan_journal",
]

_HEADER = struct.Struct(">II")

#: Upper bound on a single record payload; anything larger in a header is
#: treated as a truncated/corrupt tail rather than an allocation request.
MAX_RECORD_BYTES = 1 << 24

_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".log"


def _segment_path(directory: Path, index: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def _segment_index(path: Path) -> int | None:
    name = path.name
    if not name.startswith(_SEGMENT_PREFIX) or not name.endswith(_SEGMENT_SUFFIX):
        return None
    stem = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
    if not stem.isdigit():
        return None
    return int(stem)


def segment_paths(directory: str | Path) -> list[Path]:
    """All journal segments under ``directory`` in index order."""
    root = Path(directory)
    if not root.is_dir():
        return []
    indexed = []
    for path in root.iterdir():
        index = _segment_index(path)
        if index is not None:
            indexed.append((index, path))
    return [path for _, path in sorted(indexed)]


def encode_record(seq: int, tenant_id: str, claim_ids: tuple[str, ...], ts: float) -> bytes:
    """Frame one submission as ``header + JSON payload`` bytes."""
    payload = json.dumps(
        {"seq": seq, "tenant_id": tenant_id, "claim_ids": list(claim_ids), "ts": ts},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise JournalError(f"journal record too large: {len(payload)} bytes")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass(frozen=True)
class JournalRecord:
    """One durable, decoded submission."""

    seq: int
    tenant_id: str
    claim_ids: tuple[str, ...]
    ts: float
    segment: str


@dataclass
class JournalScan:
    """Everything a scan recovered plus what it had to skip."""

    records: list[JournalRecord] = field(default_factory=list)
    segments: int = 0
    corrupt_records: int = 0
    truncated_tails: int = 0
    bytes_scanned: int = 0

    @property
    def last_seq(self) -> int:
        return max((record.seq for record in self.records), default=-1)

    def to_dict(self) -> dict:
        return {
            "records": len(self.records),
            "segments": self.segments,
            "corrupt_records": self.corrupt_records,
            "truncated_tails": self.truncated_tails,
            "bytes_scanned": self.bytes_scanned,
            "last_seq": self.last_seq,
        }


def _scan_segment(path: Path, scan: JournalScan, *, strict: bool) -> None:
    data = path.read_bytes()
    scan.bytes_scanned += len(data)
    offset = 0
    while offset < len(data):
        if len(data) - offset < _HEADER.size:
            if strict:
                raise JournalCorruptionError(f"{path.name}: truncated header at byte {offset}")
            scan.truncated_tails += 1
            return
        length, crc = _HEADER.unpack_from(data, offset)
        if length == 0 or length > MAX_RECORD_BYTES:
            if strict:
                raise JournalCorruptionError(
                    f"{path.name}: implausible record length {length} at byte {offset}"
                )
            scan.truncated_tails += 1
            return
        start = offset + _HEADER.size
        end = start + length
        if end > len(data):
            if strict:
                raise JournalCorruptionError(f"{path.name}: truncated payload at byte {offset}")
            scan.truncated_tails += 1
            return
        payload = data[start:end]
        offset = end
        if zlib.crc32(payload) != crc:
            if strict:
                raise JournalCorruptionError(f"{path.name}: CRC mismatch at byte {start}")
            scan.corrupt_records += 1
            continue
        try:
            obj = json.loads(payload.decode("utf-8"))
            record = JournalRecord(
                seq=int(obj["seq"]),
                tenant_id=str(obj["tenant_id"]),
                claim_ids=tuple(str(claim) for claim in obj["claim_ids"]),
                ts=float(obj["ts"]),
                segment=path.name,
            )
        except (ValueError, KeyError, TypeError) as error:
            if strict:
                raise JournalCorruptionError(f"{path.name}: bad payload ({error})") from error
            scan.corrupt_records += 1
            continue
        scan.records.append(record)


def scan_journal(directory: str | Path, *, strict: bool = False) -> JournalScan:
    """Read every recoverable record from the journal at ``directory``.

    The default mode never raises for damage: CRC mismatches are skipped
    record-by-record, truncated tails end their segment, and both are
    counted on the returned :class:`JournalScan`.  ``strict=True`` turns
    any damage into :class:`~repro.errors.JournalCorruptionError`.
    """
    scan = JournalScan()
    for path in segment_paths(directory):
        scan.segments += 1
        _scan_segment(path, scan, strict=strict)
    return scan


class JournalWriter:
    """Append-only journal writer with group-commit fsync batching.

    ``append()`` frames and buffers one record and hands back its
    ``seq``; the record is durable only after the next ``commit()``
    (flush + ``fsync``).  The gateway batches many appends behind one
    commit, which is where the sustained ack throughput comes from.

    The writer is thread-safe (the gateway commits from a worker thread
    while the event loop appends) and always opens a *new* segment, so
    it can never append past a damaged tail left by a crash.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        segment_bytes: int = 4 * 1024 * 1024,
        fsync: bool = True,
        start_seq: int | None = None,
    ) -> None:
        if segment_bytes <= 0:
            raise JournalError("segment_bytes must be positive")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segment_bytes = segment_bytes
        self._fsync = fsync
        self._lock = threading.RLock()
        existing = segment_paths(self.directory)
        last_index = _segment_index(existing[-1]) if existing else -1
        self._next_segment = (last_index if last_index is not None else -1) + 1
        if start_seq is None:
            start_seq = scan_journal(self.directory).last_seq + 1
        self._next_seq = start_seq
        self._file = None
        self._sealed = []
        self._segment_written = 0
        self._uncommitted = 0
        self.records_appended = 0
        self.records_committed = 0
        self.commits = 0
        self.segments_opened = 0
        self.bytes_written = 0

    @property
    def next_seq(self) -> int:
        with self._lock:
            return self._next_seq

    def _open_segment(self) -> None:
        with self._lock:
            if self._file is not None:
                # Seal, don't sync: the old segment's records stay pending
                # until the next commit().  append() must never block on
                # fsync — it runs on the gateway event loop.
                self._file.flush()
                self._sealed.append(self._file)
                self._file = None
            path = _segment_path(self.directory, self._next_segment)
            self._next_segment += 1
            self._file = open(path, "ab")
            self._segment_written = 0
            self.segments_opened += 1

    def append(self, tenant_id: str, claim_ids: tuple[str, ...] | list[str]) -> int:
        """Buffer one submission; durable only after :meth:`commit`."""
        with self._lock:
            if self._file is None:
                self._open_segment()
            seq = self._next_seq
            frame = encode_record(seq, tenant_id, tuple(claim_ids), time.time())
            if self._segment_written and self._segment_written + len(frame) > self._segment_bytes:
                self._open_segment()
            self._file.write(frame)
            self._next_seq = seq + 1
            self._segment_written += len(frame)
            self.bytes_written += len(frame)
            self.records_appended += 1
            self._uncommitted += 1
            return seq

    def _commit_locked(self) -> None:
        with self._lock:
            if not self._uncommitted and not self._sealed:
                return
            for sealed in self._sealed:
                if self._fsync:
                    os.fsync(sealed.fileno())
                sealed.close()
            self._sealed.clear()
            if self._file is not None:
                self._file.flush()
                if self._fsync:
                    os.fsync(self._file.fileno())
            self.commits += 1
            self.records_committed += self._uncommitted
            self._uncommitted = 0

    def commit(self) -> None:
        """Make every buffered record durable (flush + fsync)."""
        with self._lock:
            self._commit_locked()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._commit_locked()
                self._file.close()
                self._file = None

    def abandon(self) -> None:
        """Drop the file handles without a final commit (crash simulation)."""
        with self._lock:
            for sealed in self._sealed:
                sealed.close()
            self._sealed.clear()
            if self._file is not None:
                self._file.close()
                self._file = None
            self._uncommitted = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "records_appended": self.records_appended,
                "records_committed": self.records_committed,
                "commits": self.commits,
                "appends_per_commit": (
                    self.records_committed / self.commits if self.commits else 0.0
                ),
                "segments_opened": self.segments_opened,
                "bytes_written": self.bytes_written,
                "next_seq": self._next_seq,
            }

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
