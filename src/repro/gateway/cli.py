"""``python -m repro.gateway`` — serve, replay, and inspect the journal.

``serve``
    Build the deterministic synthetic corpus, recover from the journal
    directory (snapshots first, then journal replay), bind a TCP port
    and serve NDJSON traffic until SIGTERM/SIGINT.  A ``manifest.json``
    in the journal directory records the corpus recipe so ``replay`` and
    ``status`` can rebuild the exact same world after a crash::

        python -m repro.gateway serve --claims 60 --seed 11 --port 0 \\
            --journal-dir ./wal --snapshot-dir ./tenants

``replay``
    Offline crash recovery: rebuild the server from ``manifest.json``,
    adopt snapshots, replay the journal, run to idle, and write a merged
    verdict report.  Safe to run repeatedly — replay is idempotent.

``status``
    Read-only inspection of a journal directory (segments, recoverable
    records, damage counters) and its snapshot store.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.config import BatchingConfig, ScrutinizerConfig
from repro.errors import ConfigurationError, ReproError
from repro.gateway.journal import scan_journal
from repro.gateway.server import GatewayServer, recover_server
from repro.runtime.snapshot import SnapshotStore
from repro.serving.cli import workload_corpus
from repro.serving.server import AdmissionPolicy, VerificationServer

__all__ = ["main"]

MANIFEST_NAME = "manifest.json"


def _manifest_payload(args: argparse.Namespace) -> dict:
    return {
        "claims": args.claims,
        "seed": args.seed,
        "batch_size": args.batch_size,
        "max_tenants": args.max_tenants,
        "max_resident": args.max_resident,
        "quota": args.quota,
        "queue_limit": args.queue_limit,
    }


def _write_manifest(journal_dir: Path, payload: dict) -> None:
    journal_dir.mkdir(parents=True, exist_ok=True)
    path = journal_dir / MANIFEST_NAME
    if path.exists():
        existing = json.loads(path.read_text(encoding="utf-8"))
        if existing != payload:
            raise ConfigurationError(
                f"journal dir {journal_dir} was created with a different "
                f"manifest ({existing}); refusing to mix corpora in one journal"
            )
        return
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def _read_manifest(journal_dir: Path) -> dict:
    path = journal_dir / MANIFEST_NAME
    if not path.exists():
        raise ConfigurationError(
            f"no {MANIFEST_NAME} in {journal_dir}; was this directory "
            "created by `python -m repro.gateway serve`?"
        )
    return json.loads(path.read_text(encoding="utf-8"))


def _build_world(manifest: dict):
    corpus = workload_corpus(int(manifest["claims"]), int(manifest["seed"]))
    config = ScrutinizerConfig(
        checker_count=3,
        options_per_property=10,
        batching=BatchingConfig(min_batch_size=1, max_batch_size=int(manifest["batch_size"])),
        seed=int(manifest["seed"]),
    )
    policy = AdmissionPolicy(
        max_tenants=int(manifest["max_tenants"]),
        max_resident_sessions=int(manifest["max_resident"]),
        max_pending_claims_per_tenant=(
            None if manifest.get("quota") is None else int(manifest["quota"])
        ),
        max_queued_submissions=int(manifest["queue_limit"]),
    )
    return corpus, config, policy


def _tenant_report(server: VerificationServer) -> dict:
    tenants = {}
    for tenant_id in sorted(server.tenant_ids):
        status = server.tenant_status(tenant_id)
        verdicts = {
            verification.claim_id: verification.verdict
            for verification in server.report(tenant_id).verifications
        }
        tenants[tenant_id] = {
            "verdicts": verdicts,
            "verified": status.verified_claims,
            "pending": status.pending_claims + status.queued_claims,
        }
    return tenants


def _cmd_serve(args: argparse.Namespace, out) -> int:
    journal_dir = Path(args.journal_dir)
    manifest = _manifest_payload(args)
    _write_manifest(journal_dir, manifest)
    corpus, config, policy = _build_world(manifest)

    async def _run() -> dict:
        gateway = GatewayServer(
            corpus,
            config,
            journal_dir=journal_dir,
            policy=policy,
            snapshot_dir=args.snapshot_dir,
            host=args.host,
            port=args.port,
            flush_interval=args.flush_interval,
            fsync=not args.no_fsync,
        )
        await gateway.start()
        recovery = gateway.recovery.to_dict() if gateway.recovery else {}
        print(f"gateway listening on {gateway.host}:{gateway.port}", file=out, flush=True)
        print(
            f"recovered {recovery.get('replayed_records', 0)} journal record(s), "
            f"adopted {len(recovery.get('adopted_tenants', ()))} tenant(s), "
            f"{recovery.get('outstanding_claims', 0)} claim(s) outstanding",
            file=out,
            flush=True,
        )
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop_event.set)
        await stop_event.wait()
        payload = gateway.status_payload()
        await gateway.stop()
        return payload

    payload = asyncio.run(_run())
    stats = payload.get("stats", {})
    journal = payload.get("journal", {})
    print(
        f"served {stats.get('submissions_accepted', 0)} submission(s) "
        f"({stats.get('claims_accepted', 0)} claims, "
        f"{stats.get('submissions_rejected', 0)} shed), "
        f"{stats.get('results_streamed', 0)} result(s) streamed in "
        f"{stats.get('rounds', 0)} round(s)",
        file=out,
    )
    print(
        f"journal: {journal.get('records_committed', 0)} record(s) over "
        f"{journal.get('commits', 0)} fsync(s) "
        f"({journal.get('appends_per_commit', 0.0):.1f} appends/fsync)",
        file=out,
    )
    if args.report:
        Path(args.report).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.report}", file=out)
    return 0


def _cmd_replay(args: argparse.Namespace, out) -> int:
    journal_dir = Path(args.journal_dir)
    manifest = _read_manifest(journal_dir)
    corpus, config, policy = _build_world(manifest)
    with VerificationServer(
        corpus,
        config,
        policy=policy,
        executor="thread",
        snapshot_dir=args.snapshot_dir,
        system_name="GatewayReplay",
    ) as server:
        recovery = recover_server(server, journal_dir)
        outcomes = server.run_until_idle(max_rounds=args.max_rounds)
        tenants = _tenant_report(server)
    pending = sum(entry["pending"] for entry in tenants.values())
    verified = sum(entry["verified"] for entry in tenants.values())
    print(
        f"replayed {recovery.replayed_records} journal record(s) "
        f"({recovery.replayed_claims} fresh claims, "
        f"{recovery.duplicate_claims} duplicates) over "
        f"{len(recovery.adopted_tenants)} adopted tenant(s)",
        file=out,
    )
    if recovery.scan.corrupt_records or recovery.scan.truncated_tails:
        print(
            f"journal damage skipped: {recovery.scan.corrupt_records} corrupt "
            f"record(s), {recovery.scan.truncated_tails} truncated tail(s)",
            file=out,
        )
    print(
        f"ran {len(outcomes)} batch(es) to completion: "
        f"{verified} verified, {pending} pending across {len(tenants)} tenant(s)",
        file=out,
    )
    if args.report:
        payload = {
            "tenants": tenants,
            "recovery": recovery.to_dict(),
            "batches": len(outcomes),
            "verified": verified,
            "pending": pending,
        }
        Path(args.report).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"report written to {args.report}", file=out)
    return 0 if pending == 0 else 1


def _cmd_status(args: argparse.Namespace, out) -> int:
    journal_dir = Path(args.journal_dir)
    scan = scan_journal(journal_dir)
    print(
        f"journal: {len(scan.records)} record(s) in {scan.segments} segment(s), "
        f"last seq {scan.last_seq}, {scan.corrupt_records} corrupt, "
        f"{scan.truncated_tails} truncated tail(s)",
        file=out,
    )
    by_tenant: dict[str, int] = {}
    for record in scan.records:
        by_tenant[record.tenant_id] = by_tenant.get(record.tenant_id, 0) + len(
            record.claim_ids
        )
    for tenant_id in sorted(by_tenant):
        print(f"  {tenant_id}: {by_tenant[tenant_id]} journaled claim(s)", file=out)
    if args.snapshot_dir:
        store = SnapshotStore(args.snapshot_dir)
        entries = store.items()
        print(f"snapshots: {len(entries)} tenant(s) in {args.snapshot_dir}", file=out)
        for key, snapshot in entries:
            state = "complete" if snapshot.is_complete else "in progress"
            print(
                f"  {key}: {snapshot.verified_count} verified, "
                f"{snapshot.pending_count} pending ({state})",
                file=out,
            )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.gateway",
        description="Durable network front door for the verification server.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="serve NDJSON traffic over TCP")
    serve.add_argument("--claims", type=int, default=60, help="synthetic corpus size")
    serve.add_argument("--seed", type=int, default=7, help="corpus + engine seed")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral)")
    serve.add_argument("--batch-size", type=int, default=10, help="claims per batch")
    serve.add_argument("--max-tenants", type=int, default=64, help="tenant registry bound")
    serve.add_argument(
        "--max-resident", type=int, default=4, help="resident sessions before LRU passivation"
    )
    serve.add_argument(
        "--quota", type=int, default=None, help="per-tenant pending-claim quota"
    )
    serve.add_argument(
        "--queue-limit", type=int, default=256, help="submission backlog bound"
    )
    serve.add_argument(
        "--flush-interval",
        type=float,
        default=0.002,
        help="group-commit window in seconds (acks batched per fsync)",
    )
    serve.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip fsync on commit (benchmarks only; weakens durability)",
    )
    serve.add_argument(
        "--journal-dir", required=True, help="write-ahead journal directory"
    )
    serve.add_argument(
        "--snapshot-dir", default=None, help="tenant snapshot directory (recovery baseline)"
    )
    serve.add_argument("--report", default=None, help="write a JSON lifecycle report here")

    replay = commands.add_parser(
        "replay", help="offline crash recovery: snapshots + journal → merged report"
    )
    replay.add_argument("--journal-dir", required=True, help="journal directory to replay")
    replay.add_argument(
        "--snapshot-dir", default=None, help="snapshot directory adopted before replay"
    )
    replay.add_argument(
        "--max-rounds", type=int, default=None, help="bound the catch-up round loop"
    )
    replay.add_argument("--report", default=None, help="write the merged verdict report here")

    status = commands.add_parser("status", help="inspect a journal directory read-only")
    status.add_argument("--journal-dir", required=True, help="journal directory")
    status.add_argument("--snapshot-dir", default=None, help="snapshot directory")
    return parser


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {"serve": _cmd_serve, "replay": _cmd_replay, "status": _cmd_status}
    try:
        return handlers[args.command](args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
