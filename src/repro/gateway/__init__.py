"""Network front door for the multi-tenant verification server.

``repro.gateway`` turns the in-process :class:`~repro.serving.server.
VerificationServer` into a real serving process:

* a stdlib-``asyncio`` TCP server speaking newline-delimited JSON
  (:mod:`repro.gateway.protocol`) with admission control and
  load-shedding at the edge,
* a write-ahead submission journal (:mod:`repro.gateway.journal`) that
  makes every ack durable *before* the client sees it, and
* a recovery path (``adopt_tenants()`` from snapshots, then journal
  replay) that survives ``SIGKILL`` with zero acked submissions lost.

``python -m repro.gateway serve|replay|status`` is the operational
surface; :mod:`repro.gateway.client` is the asyncio client used by the
workload driver, the e2e kill-and-replay test and the throughput
benchmark.

Layering contract: layer 13 of the enforced import DAG (peer of
``experiments``, the top) — may import every other subsystem, in practice
``serving`` and below; nothing imports it. Enforced by reprolint; see
``docs/architecture.md``.
"""

from repro.gateway.journal import (
    JournalRecord,
    JournalScan,
    JournalWriter,
    scan_journal,
)
from repro.gateway.server import GatewayServer, GatewayStats, RecoveryReport, recover_server

__all__ = [
    "GatewayServer",
    "GatewayStats",
    "JournalRecord",
    "JournalScan",
    "JournalWriter",
    "RecoveryReport",
    "recover_server",
    "scan_journal",
]
