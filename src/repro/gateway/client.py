"""Asyncio client for the gateway, plus the scripted workload driver.

:class:`GatewayClient` correlates request/response frames by
``request_id`` and funnels asynchronously streamed ``result`` /
``complete`` frames into a queue; error frames re-raise the same
:mod:`repro.errors` exceptions the in-process server would have thrown,
so retry loops written against :class:`~repro.serving.server.
VerificationServer` port over unchanged.

:func:`drive_workload_through_gateway` replays a
:class:`~repro.serving.workloads.ServingWorkload` script over the wire —
the network twin of :func:`repro.serving.workloads.drive_workload` —
and is what the e2e kill-and-replay test and the throughput benchmark
drive traffic with.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.errors import BackpressureError, GatewayError, ReproError, UnknownTenantError
from repro.gateway.protocol import decode_frame, encode_frame, exception_for_error
from repro.serving.workloads import ServingWorkload

__all__ = ["GatewayClient", "GatewayWorkloadResult", "drive_workload_through_gateway"]


class GatewayClient:
    """One NDJSON connection to a gateway."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: dict[str, asyncio.Future] = {}
        self._results: asyncio.Queue = asyncio.Queue()
        self._next_request = 0
        self._reader_task: asyncio.Task | None = None
        self._closed = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "GatewayClient":
        reader, writer = await asyncio.open_connection(host, port, limit=1 << 20)
        client = cls(reader, writer)
        client._reader_task = asyncio.create_task(client._read_loop())
        return client

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    frame = decode_frame(line)
                except ReproError:
                    continue
                request_id = frame.get("request_id")
                if isinstance(request_id, str) and request_id in self._pending:
                    waiter = self._pending.pop(request_id)
                    if waiter.done():
                        continue
                    if frame.get("type") == "error":
                        waiter.set_exception(exception_for_error(frame))
                    else:
                        waiter.set_result(frame)
                elif frame.get("type") in ("result", "complete"):
                    await self._results.put(frame)
        except (ConnectionError, OSError):
            pass
        finally:
            for waiter in self._pending.values():
                if not waiter.done():
                    waiter.set_exception(GatewayError("connection closed"))
            self._pending.clear()
            await self._results.put(None)

    async def _request(self, frame: dict, *, timeout: float = 60.0) -> dict:
        if self._closed:
            raise GatewayError("client is closed")
        self._next_request += 1
        request_id = str(self._next_request)
        frame = {**frame, "request_id": request_id}
        waiter = asyncio.get_running_loop().create_future()
        self._pending[request_id] = waiter
        self._writer.write(encode_frame(frame))
        await self._writer.drain()
        return await asyncio.wait_for(waiter, timeout)

    async def submit(
        self,
        tenant_id: str,
        claim_ids,
        *,
        max_retries: int = 0,
        retry_delay: float = 0.05,
        timeout: float = 60.0,
    ) -> dict:
        """Submit claims; optionally retry typed backpressure sheds."""
        attempt = 0
        while True:
            try:
                return await self._request(
                    {"type": "submit", "tenant_id": tenant_id, "claim_ids": list(claim_ids)},
                    timeout=timeout,
                )
            except BackpressureError:
                if attempt >= max_retries:
                    raise
                attempt += 1
                await asyncio.sleep(retry_delay * attempt)

    async def subscribe(self, tenant_id: str, *, timeout: float = 60.0) -> dict:
        return await self._request(
            {"type": "subscribe", "tenant_id": tenant_id}, timeout=timeout
        )

    async def report(self, tenant_id: str, *, timeout: float = 120.0) -> dict:
        return await self._request(
            {"type": "report", "tenant_id": tenant_id}, timeout=timeout
        )

    async def status(self, *, timeout: float = 60.0) -> dict:
        return await self._request({"type": "status"}, timeout=timeout)

    async def evict(self, tenant_id: str, *, timeout: float = 120.0) -> dict:
        return await self._request({"type": "evict", "tenant_id": tenant_id}, timeout=timeout)

    async def next_result(self, *, timeout: float = 60.0) -> dict | None:
        """Next streamed ``result``/``complete`` frame; None once closed."""
        return await asyncio.wait_for(self._results.get(), timeout)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            await self._request({"type": "bye"}, timeout=5.0)
        except (ReproError, OSError, asyncio.TimeoutError):
            pass
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def __aenter__(self) -> "GatewayClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


@dataclass
class GatewayWorkloadResult:
    """What a scripted run over the wire observed."""

    submissions: int = 0
    accepted_claims: int = 0
    duplicate_claims: int = 0
    deferred_submissions: int = 0
    evictions: int = 0
    wall_seconds: float = 0.0
    ack_latencies: list[float] = field(default_factory=list)
    #: tenant → {claim_id: verdict} assembled from streamed result frames.
    verdicts_by_tenant: dict[str, dict[str, bool | None]] = field(default_factory=dict)

    @property
    def result_count(self) -> int:
        return sum(len(verdicts) for verdicts in self.verdicts_by_tenant.values())


async def drive_workload_through_gateway(
    workload: ServingWorkload,
    host: str,
    port: int,
    *,
    max_retries: int = 64,
    collect_results: bool = True,
    result_timeout: float = 300.0,
) -> GatewayWorkloadResult:
    """Replay a workload script against a live gateway.

    Submissions run in script order (ack-confirmed one at a time, so the
    journal order is deterministic for a given workload); crash events
    become ``evict`` frames — over the wire, a crash drill is "passivate
    the tenant and keep going".  With ``collect_results`` the driver then
    consumes streamed frames until every submitted claim has a verdict.
    """
    outcome = GatewayWorkloadResult()
    expected: dict[str, set[str]] = {}
    started = time.perf_counter()
    async with await GatewayClient.connect(host, port) as client:
        events = sorted(
            workload.submissions, key=lambda event: (event.round_index, event.tenant_id)
        )
        crashes = sorted(
            workload.crashes, key=lambda event: (event.round_index, event.tenant_id)
        )
        crash_cursor = 0
        for event in events:
            while (
                crash_cursor < len(crashes)
                and crashes[crash_cursor].round_index <= event.round_index
            ):
                crash = crashes[crash_cursor]
                crash_cursor += 1
                try:
                    await client.evict(crash.tenant_id)
                    outcome.evictions += 1
                except (UnknownTenantError, GatewayError):
                    pass
            submit_started = time.perf_counter()
            try:
                ack = await client.submit(
                    event.tenant_id, event.claim_ids, max_retries=max_retries
                )
            except BackpressureError:
                outcome.deferred_submissions += 1
                continue
            outcome.ack_latencies.append(time.perf_counter() - submit_started)
            outcome.submissions += 1
            outcome.accepted_claims += int(ack.get("accepted", 0))
            outcome.duplicate_claims += int(ack.get("duplicates", 0))
            expected.setdefault(event.tenant_id, set()).update(event.claim_ids)
        if collect_results:
            for tenant_id in expected:
                outcome.verdicts_by_tenant.setdefault(tenant_id, {})
            remaining = {
                tenant_id: set(claims) for tenant_id, claims in expected.items() if claims
            }
            while remaining:
                frame = await client.next_result(timeout=result_timeout)
                if frame is None:
                    raise GatewayError(
                        f"connection closed with results outstanding: "
                        f"{ {t: len(c) for t, c in remaining.items()} }"
                    )
                if frame.get("type") != "result":
                    continue
                tenant_id = frame.get("tenant_id")
                claim_id = frame.get("claim_id")
                if tenant_id not in remaining or not isinstance(claim_id, str):
                    continue
                outcome.verdicts_by_tenant[tenant_id][claim_id] = frame.get("verdict")
                remaining[tenant_id].discard(claim_id)
                if not remaining[tenant_id]:
                    del remaining[tenant_id]
    outcome.wall_seconds = time.perf_counter() - started
    return outcome
