"""The asyncio gateway: edge admission, durable acks, streamed results.

Threading model (the whole design in four lines):

* the **event loop** owns all edge state — tenant registry, dedup sets,
  outstanding counts, the submission backlog — so admission decisions
  never need a lock;
* a **single-thread engine executor** owns the
  :class:`~repro.serving.server.VerificationServer`; every touch of the
  engine goes through ``run_in_executor`` on that executor, so the
  server never sees two threads;
* a **flush coroutine** group-commits the journal: many acks ride one
  ``fsync``;
* data crosses between them by value (submission batches in, plain
  outcome reports back).

Durability contract: a submission is journaled and fsynced *before* its
ack frame is written, so the set of acked submissions is always a
subset of the journal.  Recovery (:func:`recover_server`) first adopts
every tenant snapshot (``adopt_tenants()``), then replays the journal
in sequence order — replaying an already-snapshotted submission is a
no-op because sessions dedup known claims — so a ``SIGKILL`` at any
point loses zero acked submissions.
"""

from __future__ import annotations

import asyncio
import contextlib
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import ScrutinizerConfig
from repro.errors import (
    AdmissionError,
    BackpressureError,
    ClaimError,
    GatewayError,
    ProtocolError,
    ReproError,
    UnknownTenantError,
)
from repro.gateway.journal import JournalScan, JournalWriter, scan_journal
from repro.gateway.protocol import (
    ERROR_BAD_FRAME,
    encode_frame,
    decode_frame,
    error_code_for,
    error_frame,
)
from repro.serving.server import AdmissionPolicy, TenantBatchOutcome, VerificationServer

__all__ = ["GatewayServer", "GatewayStats", "RecoveryReport", "recover_server"]


# ---------------------------------------------------------------------- #
# recovery
# ---------------------------------------------------------------------- #
@dataclass
class RecoveryReport:
    """What a restart found and rebuilt: snapshots first, then journal."""

    adopted_tenants: tuple[str, ...]
    scan: JournalScan
    replayed_records: int
    replayed_claims: int
    duplicate_claims: int
    rejected_records: int
    #: Edge dedup sets rebuilt from snapshots + journal, per tenant.
    known_claims: dict[str, set[str]]
    #: Undecided (pending + queued) claims per tenant after replay.
    outstanding: dict[str, int]
    verified: dict[str, int]

    def to_dict(self) -> dict:
        return {
            "adopted_tenants": sorted(self.adopted_tenants),
            "journal": self.scan.to_dict(),
            "replayed_records": self.replayed_records,
            "replayed_claims": self.replayed_claims,
            "duplicate_claims": self.duplicate_claims,
            "rejected_records": self.rejected_records,
            "tenants": len(self.known_claims),
            "outstanding_claims": sum(self.outstanding.values()),
            "verified_claims": sum(self.verified.values()),
        }


def recover_server(
    server: VerificationServer, journal_dir: str | Path, *, strict: bool = False
) -> RecoveryReport:
    """Rebuild ``server`` from snapshots plus the submission journal.

    Ordering matters and is pinned by test: ``adopt_tenants()`` runs
    first so passivated progress (verified claims, trained models) is
    the baseline, then the journal replays in sequence order to re-queue
    every acked-but-unprocessed submission.  Claims the snapshots
    already decided dedup to no-ops, which is what makes replay — and
    replay-of-a-replay — idempotent.
    """
    adopted = server.adopt_tenants()
    known: dict[str, set[str]] = {}
    if server.store is not None:
        for key, snapshot in server.store.items():
            claims = set(snapshot.verdicts)
            if snapshot.session is not None:
                claims.update(str(c) for c in snapshot.session["pending"])
            known[key] = claims
    scan = scan_journal(journal_dir, strict=strict)
    replayed_records = replayed_claims = duplicate_claims = rejected_records = 0
    for record in scan.records:
        try:
            try:
                accepted = server.submit(record.tenant_id, record.claim_ids)
            except BackpressureError:
                # The live-traffic queue bound must never reject an acked
                # record: drain onto tenant records and retry.
                server.flush_submissions()
                accepted = server.submit(record.tenant_id, record.claim_ids)
        except ReproError:
            rejected_records += 1
            continue
        known.setdefault(record.tenant_id, set()).update(record.claim_ids)
        replayed_records += 1
        replayed_claims += accepted
        duplicate_claims += len(record.claim_ids) - accepted
    server.flush_submissions()
    outstanding: dict[str, int] = {}
    verified: dict[str, int] = {}
    for tenant_id in server.tenant_ids:
        status = server.tenant_status(tenant_id)
        outstanding[tenant_id] = status.pending_claims + status.queued_claims
        verified[tenant_id] = status.verified_claims
        known.setdefault(tenant_id, set())
    return RecoveryReport(
        adopted_tenants=adopted,
        scan=scan,
        replayed_records=replayed_records,
        replayed_claims=replayed_claims,
        duplicate_claims=duplicate_claims,
        rejected_records=rejected_records,
        known_claims=known,
        outstanding=outstanding,
        verified=verified,
    )


# ---------------------------------------------------------------------- #
# bookkeeping
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _PendingSubmission:
    """One journaled submission waiting for the engine (seq-ordered)."""

    seq: int
    tenant_id: str
    claim_ids: tuple[str, ...]


@dataclass
class _EngineReport:
    """Plain-data result of one engine step, handed back to the loop."""

    outcomes: list[TenantBatchOutcome]
    idle: bool
    rejected: int
    ran_round: bool
    #: tenant → (outstanding undecided claims, verified claims).
    tenants: dict[str, tuple[int, int]]


@dataclass
class GatewayStats:
    """Lifecycle counters the status frame and run report expose."""

    connections_opened: int = 0
    frames_received: int = 0
    frames_sent: int = 0
    submissions_accepted: int = 0
    submissions_rejected: int = 0
    rejections_by_code: dict[str, int] = field(default_factory=dict)
    claims_accepted: int = 0
    duplicate_claims: int = 0
    results_streamed: int = 0
    rounds: int = 0
    batches: int = 0
    engine_rejects: int = 0

    def shed(self, code: str) -> None:
        self.submissions_rejected += 1
        self.rejections_by_code[code] = self.rejections_by_code.get(code, 0) + 1

    def to_dict(self) -> dict:
        return {
            "connections_opened": self.connections_opened,
            "frames_received": self.frames_received,
            "frames_sent": self.frames_sent,
            "submissions_accepted": self.submissions_accepted,
            "submissions_rejected": self.submissions_rejected,
            "rejections_by_code": dict(self.rejections_by_code),
            "claims_accepted": self.claims_accepted,
            "duplicate_claims": self.duplicate_claims,
            "results_streamed": self.results_streamed,
            "rounds": self.rounds,
            "batches": self.batches,
            "engine_rejects": self.engine_rejects,
        }


class _Connection:
    """One client connection; frame writes serialize on an asyncio lock."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self._write_lock = asyncio.Lock()
        self._closed = False

    async def send(self, frame: dict) -> bool:
        """Write one frame; False when the connection is already gone."""
        data = encode_frame(frame)
        async with self._write_lock:
            if self._closed:
                return False
            self.writer.write(data)
            await self.writer.drain()
        return True

    async def close(self) -> None:
        async with self._write_lock:
            if self._closed:
                return
            self._closed = True
        with contextlib.suppress(ConnectionError, OSError):
            self.writer.close()
            await self.writer.wait_closed()


# ---------------------------------------------------------------------- #
# the gateway
# ---------------------------------------------------------------------- #
class GatewayServer:
    """NDJSON-over-TCP front door for a :class:`VerificationServer`.

    The ack path touches only event-loop state and the journal, so ack
    latency is independent of round duration; the engine runs rounds on
    its own executor thread and streams results back to subscribers as
    batches complete.
    """

    def __init__(
        self,
        corpus,
        config: ScrutinizerConfig | None = None,
        *,
        journal_dir: str | Path,
        policy: AdmissionPolicy | None = None,
        snapshot_dir: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        flush_interval: float = 0.002,
        segment_bytes: int = 4 * 1024 * 1024,
        fsync: bool = True,
        auto_pump: bool = True,
        executor: str = "thread",
        system_name: str = "Gateway",
    ) -> None:
        self._server = VerificationServer(
            corpus,
            config,
            policy=policy,
            executor=executor,
            snapshot_dir=snapshot_dir,
            system_name=system_name,
        )
        self.policy = self._server.policy
        self._journal = JournalWriter(journal_dir, segment_bytes=segment_bytes, fsync=fsync)
        self._engine = ThreadPoolExecutor(max_workers=1, thread_name_prefix="gateway-engine")
        self.stats = GatewayStats()
        self.host = host
        self.port: int | None = None
        self._requested_port = port
        self._flush_interval = flush_interval
        self._auto_pump = auto_pump
        # Edge state: event-loop thread only, never shared, never locked.
        self._known: dict[str, set[str]] = {}
        self._outstanding: dict[str, int] = {}
        self._verified: dict[str, int] = {}
        self._backlog: deque[_PendingSubmission] = deque()
        self._subscribers: dict[str, set[_Connection]] = {}
        self._connections: set[_Connection] = set()
        self._commit_waiters: list[asyncio.Future] = []
        self._work = asyncio.Event()
        self._flush_request = asyncio.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._tcp: asyncio.Server | None = None
        self._pump_task: asyncio.Task | None = None
        self._flush_task: asyncio.Task | None = None
        self._recovery: RecoveryReport | None = None
        self._last_idle = True
        self._engine_busy = False
        self._stopping = False
        self._stopped = False

    # ------------------------------------------------------------------ #
    # properties & introspection
    # ------------------------------------------------------------------ #
    @property
    def server(self) -> VerificationServer:
        return self._server

    @property
    def journal(self) -> JournalWriter:
        return self._journal

    @property
    def recovery(self) -> RecoveryReport | None:
        return self._recovery

    @property
    def backlog_size(self) -> int:
        return len(self._backlog)

    def status_payload(self) -> dict:
        """Edge-side view; never blocks on the engine."""
        return {
            "listening": {"host": self.host, "port": self.port},
            "connections": len(self._connections),
            "tenants": len(self._known),
            "backlog": len(self._backlog),
            "outstanding_claims": sum(self._outstanding.values()),
            "verified_claims": sum(self._verified.values()),
            "idle": self._last_idle and not self._backlog and not self._engine_busy,
            "stats": self.stats.to_dict(),
            "journal": self._journal.stats(),
            "recovery": self._recovery.to_dict() if self._recovery else None,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Recover, bind, and begin serving."""
        self._loop = asyncio.get_running_loop()
        recovery = await self._loop.run_in_executor(self._engine, self._engine_recover)
        self._recovery = recovery
        for tenant_id, claims in recovery.known_claims.items():
            self._known[tenant_id] = set(claims)
        self._outstanding.update(recovery.outstanding)
        self._verified.update(recovery.verified)
        self._last_idle = all(count == 0 for count in recovery.outstanding.values())
        self._tcp = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self._requested_port,
            limit=1 << 20,
        )
        self.port = self._tcp.sockets[0].getsockname()[1]
        self._flush_task = asyncio.create_task(self._flush_loop())
        if self._auto_pump:
            self._pump_task = asyncio.create_task(self._round_loop())
        if not self._last_idle:
            self._work.set()

    async def stop(self) -> None:
        """Graceful shutdown: drain the backlog, passivate every tenant."""
        if self._stopped:
            return
        self._stopping = True
        self._work.set()
        self._flush_request.set()
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
        await self._cancel_tasks()
        self._fail_commit_waiters("gateway stopped before commit")
        batch = list(self._backlog)
        self._backlog.clear()
        if self._loop is not None:
            await self._loop.run_in_executor(self._engine, self._engine_shutdown, batch)
        self._engine.shutdown(wait=True)
        # close() runs the journal's final fsync; keep it off the loop.
        loop = self._loop or asyncio.get_running_loop()
        await loop.run_in_executor(None, self._journal.close)
        await self._close_connections()
        self._stopped = True

    async def abort(self) -> None:
        """Crash simulation: stop without passivation or a final commit.

        Used by recovery tests to model ``SIGKILL``: whatever the journal
        fsynced survives, resident sessions and buffered journal bytes do
        not.
        """
        if self._stopped:
            return
        self._stopping = True
        self._work.set()
        self._flush_request.set()
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
        await self._cancel_tasks()
        self._fail_commit_waiters("gateway aborted before commit")
        self._engine.shutdown(wait=True)
        self._journal.abandon()
        # Free worker threads without passivating: a crash writes no
        # snapshots, but threads are not state.
        if self._server._owns_pool:  # noqa: SLF001 — crash simulation only
            with contextlib.suppress(ReproError):
                self._server._pool.close()  # noqa: SLF001
        await self._close_connections()
        self._stopped = True

    async def _cancel_tasks(self) -> None:
        for task in (self._pump_task, self._flush_task):
            if task is not None:
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task
        self._pump_task = None
        self._flush_task = None

    def _fail_commit_waiters(self, reason: str) -> None:
        waiters = self._commit_waiters
        self._commit_waiters = []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_exception(GatewayError(reason))

    async def _close_connections(self) -> None:
        for connection in tuple(self._connections):
            await connection.close()
        self._connections.clear()
        self._subscribers.clear()

    async def __aenter__(self) -> "GatewayServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # engine-thread functions (run on the single-thread executor; they
    # must not write gateway state — results travel back by value)
    # ------------------------------------------------------------------ #
    def _engine_recover(self) -> RecoveryReport:
        return recover_server(self._server, self._journal.directory)

    def _engine_step(self, batch: list[_PendingSubmission]) -> _EngineReport:
        rejected = 0
        touched = set()
        for submission in batch:
            touched.add(submission.tenant_id)
            try:
                try:
                    self._server.submit(submission.tenant_id, submission.claim_ids)
                except BackpressureError:
                    self._server.flush_submissions()
                    self._server.submit(submission.tenant_id, submission.claim_ids)
            except ReproError:
                rejected += 1
        outcomes = self._server.run_round()
        touched.update(outcome.tenant_id for outcome in outcomes)
        tenants = {}
        for tenant_id in touched:
            status = self._server.tenant_status(tenant_id)
            tenants[tenant_id] = (
                status.pending_claims + status.queued_claims,
                status.verified_claims,
            )
        return _EngineReport(
            outcomes=outcomes,
            idle=self._server.is_idle,
            rejected=rejected,
            ran_round=bool(outcomes),
            tenants=tenants,
        )

    def _engine_report_for(self, tenant_id: str) -> dict:
        report = self._server.report(tenant_id)
        status = self._server.tenant_status(tenant_id)
        return {
            "verdicts": {
                verification.claim_id: verification.verdict
                for verification in report.verifications
            },
            "pending": status.pending_claims + status.queued_claims,
            "verified": status.verified_claims,
        }

    def _engine_evict(self, tenant_id: str) -> bool:
        return self._server.evict(tenant_id)

    def _engine_shutdown(self, batch: list[_PendingSubmission]) -> None:
        for submission in batch:
            with contextlib.suppress(ReproError):
                try:
                    self._server.submit(submission.tenant_id, submission.claim_ids)
                except BackpressureError:
                    self._server.flush_submissions()
                    self._server.submit(submission.tenant_id, submission.claim_ids)
        self._server.close()

    # ------------------------------------------------------------------ #
    # pump & flush loops
    # ------------------------------------------------------------------ #
    async def _round_loop(self) -> None:
        while not self._stopping:
            await self._work.wait()
            if self._stopping:
                break
            await self.pump_once()
            if not self._backlog and self._last_idle:
                self._work.clear()

    async def pump_once(self) -> _EngineReport:
        """Apply the backlog and run one round; stream the results.

        The auto-pump loop calls this continuously; tests construct the
        gateway with ``auto_pump=False`` and call it directly for
        deterministic stepping.
        """
        batch = list(self._backlog)
        self._backlog.clear()
        assert self._loop is not None
        self._engine_busy = True
        try:
            report = await self._loop.run_in_executor(self._engine, self._engine_step, batch)
        finally:
            self._engine_busy = False
        for tenant_id, frame in self._apply_engine_report(report):
            await self._broadcast(tenant_id, frame)
        return report

    def _apply_engine_report(self, report: _EngineReport) -> list[tuple[str, dict]]:
        frames: list[tuple[str, dict]] = []
        self.stats.engine_rejects += report.rejected
        if report.ran_round:
            self.stats.rounds += 1
        for outcome in report.outcomes:
            self.stats.batches += 1
            for verification in outcome.result.verifications:
                frames.append(
                    (
                        outcome.tenant_id,
                        {
                            "type": "result",
                            "tenant_id": outcome.tenant_id,
                            "claim_id": verification.claim_id,
                            "verdict": verification.verdict,
                            "skipped": verification.skipped,
                            "batch_index": verification.batch_index,
                        },
                    )
                )
                self.stats.results_streamed += 1
        for tenant_id, (outstanding, verified) in report.tenants.items():
            backlogged = sum(
                len(submission.claim_ids)
                for submission in self._backlog
                if submission.tenant_id == tenant_id
            )
            self._outstanding[tenant_id] = outstanding + backlogged
            self._verified[tenant_id] = verified
            if outstanding + backlogged == 0:
                frames.append(
                    (
                        tenant_id,
                        {"type": "complete", "tenant_id": tenant_id, "verified": verified},
                    )
                )
        self._last_idle = report.idle
        return frames

    async def _flush_loop(self) -> None:
        while not self._stopping:
            await self._flush_request.wait()
            self._flush_request.clear()
            if self._stopping:
                break
            if self._flush_interval > 0:
                # The group-commit window: every ack that arrives while we
                # sleep rides the same fsync.
                await asyncio.sleep(self._flush_interval)
            waiters = self._commit_waiters
            self._commit_waiters = []
            if not waiters:
                continue
            assert self._loop is not None
            try:
                await self._loop.run_in_executor(None, self._journal.commit)
            except OSError as error:
                for waiter in waiters:
                    if not waiter.done():
                        waiter.set_exception(GatewayError(f"journal commit failed: {error}"))
            else:
                for waiter in waiters:
                    if not waiter.done():
                        waiter.set_result(None)

    async def _commit(self) -> None:
        assert self._loop is not None
        waiter = self._loop.create_future()
        self._commit_waiters.append(waiter)
        self._flush_request.set()
        await waiter

    async def wait_idle(self, timeout: float = 120.0) -> bool:
        """Poll until backlog and engine are drained (tests, benchmarks)."""
        assert self._loop is not None
        deadline = self._loop.time() + timeout
        while self._loop.time() < deadline:
            if not self._backlog and not self._engine_busy and self._last_idle:
                return True
            await asyncio.sleep(0.02)
        return False

    # ------------------------------------------------------------------ #
    # connections & dispatch
    # ------------------------------------------------------------------ #
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        self.stats.connections_opened += 1
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError:
                    break
                except asyncio.LimitOverrunError:
                    await self._send(
                        connection,
                        error_frame(ERROR_BAD_FRAME, "frame exceeds the size limit"),
                    )
                    break
                except (ConnectionError, OSError):
                    break
                self.stats.frames_received += 1
                try:
                    frame = decode_frame(line)
                except ProtocolError as error:
                    self.stats.shed(ERROR_BAD_FRAME)
                    if not await self._send(
                        connection, error_frame(ERROR_BAD_FRAME, str(error))
                    ):
                        break
                    continue
                if not await self._dispatch(connection, frame):
                    break
        finally:
            self._connections.discard(connection)
            for subscribers in self._subscribers.values():
                subscribers.discard(connection)
            await connection.close()

    async def _send(self, connection: _Connection, frame: dict) -> bool:
        try:
            sent = await connection.send(frame)
        except (ConnectionError, OSError):
            return False
        if sent:
            self.stats.frames_sent += 1
        return sent

    async def _respond(self, connection: _Connection, frame: dict, rid: str | None) -> bool:
        if rid is not None:
            frame["request_id"] = rid
        return await self._send(connection, frame)

    def _subscribe(self, connection: _Connection, tenant_id: str) -> None:
        self._subscribers.setdefault(tenant_id, set()).add(connection)

    async def _broadcast(self, tenant_id: str, frame: dict) -> None:
        for connection in tuple(self._subscribers.get(tenant_id, ())):
            if not await self._send(connection, frame):
                self._subscribers[tenant_id].discard(connection)

    async def _dispatch(self, connection: _Connection, frame: dict) -> bool:
        kind = frame["type"]
        request_id = frame.get("request_id")
        rid = request_id if isinstance(request_id, str) else None
        try:
            if kind == "submit":
                await self._handle_submit(connection, frame, rid)
            elif kind == "subscribe":
                tenant_id = _required_str(frame, "tenant_id")
                self._subscribe(connection, tenant_id)
                await self._respond(
                    connection,
                    {"type": "ack", "tenant_id": tenant_id, "subscribed": True},
                    rid,
                )
            elif kind == "report":
                await self._handle_report(connection, frame, rid)
            elif kind == "status":
                await self._respond(
                    connection, {"type": "status", **self.status_payload()}, rid
                )
            elif kind == "evict":
                await self._handle_evict(connection, frame, rid)
            elif kind == "bye":
                await self._respond(connection, {"type": "bye"}, rid)
                return False
            else:
                raise ProtocolError(f"unknown frame type {kind!r}")
        except ReproError as error:
            code = error_code_for(error)
            self.stats.shed(code)
            response = error_frame(code, str(error), request_id=rid)
            if isinstance(error, UnknownTenantError):
                response["tenant_id"] = error.tenant_id
            return await self._send(connection, response)
        return True

    async def _handle_submit(
        self, connection: _Connection, frame: dict, rid: str | None
    ) -> None:
        tenant_id = _required_str(frame, "tenant_id")
        raw_claims = frame.get("claim_ids")
        if not isinstance(raw_claims, list) or not raw_claims:
            raise ProtocolError("submit frame needs a non-empty 'claim_ids' list")
        if not all(isinstance(claim, str) and claim for claim in raw_claims):
            raise ProtocolError("'claim_ids' must be non-empty strings")
        if self._stopping:
            raise GatewayError("the gateway is shutting down")
        ids = tuple(dict.fromkeys(raw_claims))
        unknown = [claim for claim in ids if claim not in self._server.corpus]
        if unknown:
            raise ClaimError(f"unknown claims submitted: {unknown[:5]!r}")
        new_tenant = tenant_id not in self._known
        if new_tenant and len(self._known) >= self.policy.max_tenants:
            raise AdmissionError(
                f"tenant registry is full ({self.policy.max_tenants} tenants)"
            )
        known = self._known.get(tenant_id, set())
        fresh = tuple(claim for claim in ids if claim not in known)
        outstanding = self._outstanding.get(tenant_id, 0)
        if not fresh:
            # Idempotent retry: everything here was acked before.
            self._subscribe(connection, tenant_id)
            self.stats.duplicate_claims += len(ids)
            await self._respond(
                connection,
                {
                    "type": "ack",
                    "tenant_id": tenant_id,
                    "accepted": 0,
                    "duplicates": len(ids),
                    "seq": None,
                    "outstanding": outstanding,
                },
                rid,
            )
            return
        quota = self.policy.max_pending_claims_per_tenant
        if quota is not None and outstanding + len(fresh) > quota:
            raise AdmissionError(
                f"tenant {tenant_id!r} would exceed its pending-claim quota "
                f"({outstanding} outstanding + {len(fresh)} new > {quota})"
            )
        if len(self._backlog) >= self.policy.max_queued_submissions:
            raise BackpressureError(
                f"submission backlog is full "
                f"({self.policy.max_queued_submissions} requests); retry later"
            )
        # Accepted: journal, index, enqueue — all before the first await,
        # so backlog order always equals journal order.
        seq = self._journal.append(tenant_id, fresh)
        self._known.setdefault(tenant_id, set()).update(fresh)
        self._outstanding[tenant_id] = outstanding + len(fresh)
        self._backlog.append(_PendingSubmission(seq=seq, tenant_id=tenant_id, claim_ids=fresh))
        self._subscribe(connection, tenant_id)
        self._work.set()
        self.stats.submissions_accepted += 1
        self.stats.claims_accepted += len(fresh)
        self.stats.duplicate_claims += len(ids) - len(fresh)
        # Durability barrier: the ack may only be written once the record
        # is fsynced (group-committed with its neighbours).
        await self._commit()
        await self._respond(
            connection,
            {
                "type": "ack",
                "tenant_id": tenant_id,
                "accepted": len(fresh),
                "duplicates": len(ids) - len(fresh),
                "seq": seq,
                "outstanding": self._outstanding.get(tenant_id, 0),
            },
            rid,
        )

    async def _handle_report(
        self, connection: _Connection, frame: dict, rid: str | None
    ) -> None:
        tenant_id = _required_str(frame, "tenant_id")
        if tenant_id not in self._known:
            raise UnknownTenantError(tenant_id)
        assert self._loop is not None
        payload = await self._loop.run_in_executor(
            self._engine, self._engine_report_for, tenant_id
        )
        await self._respond(
            connection, {"type": "report", "tenant_id": tenant_id, **payload}, rid
        )

    async def _handle_evict(
        self, connection: _Connection, frame: dict, rid: str | None
    ) -> None:
        tenant_id = _required_str(frame, "tenant_id")
        if tenant_id not in self._known:
            raise UnknownTenantError(tenant_id)
        assert self._loop is not None
        evicted = await self._loop.run_in_executor(self._engine, self._engine_evict, tenant_id)
        await self._respond(
            connection,
            {"type": "evicted", "tenant_id": tenant_id, "evicted": bool(evicted)},
            rid,
        )


def _required_str(frame: dict, key: str) -> str:
    value = frame.get(key)
    if not isinstance(value, str) or not value:
        raise ProtocolError(f"frame needs a non-empty string {key!r}")
    return value
