"""The multi-tenant verification server.

:class:`VerificationServer` turns the single-session runtime into a
serving layer: many tenants submit claims against a shared corpus, each
tenant gets its own isolated :class:`~repro.api.service.VerificationService`
(own translator, own feature store, own RNG streams — seeded per tenant,
so runs are deterministic and tenants cannot observe each other), and a
work-stealing, deadline-aware scheduler
(:class:`~repro.serving.scheduler.TenantScheduler`) multiplexes
``run_batch`` calls across the resident sessions over one shared
:class:`~repro.runtime.pool.WorkerPool`: runnable tenants accrue
weighted-deficit credit, a freed worker immediately takes the round's
next tenant instead of idling behind a barrier, and the scheduled
tenants' batch selections are fused into a single
:meth:`~repro.planning.engine.PlannerEngine.plan_fused` solve (exact —
each tenant gets the same batch an independent solve would pick).

Admission control (:class:`AdmissionPolicy`) bounds every resource the
server holds:

* the **registry** — at most ``max_tenants`` tenants ever admitted;
* the **submission queue** — at most ``max_queued_submissions`` requests
  waiting for the next scheduling round; a full queue raises
  :class:`~repro.errors.BackpressureError` so callers back off instead of
  growing the server without bound;
* the **per-tenant pending-claim quota** — a tenant cannot hold more than
  ``max_pending_claims_per_tenant`` undecided claims across its session
  and queued submissions;
* the **resident set** — at most ``max_resident_sessions`` sessions live
  in memory; beyond that, the least-recently-scheduled sessions are
  passivated to :class:`~repro.runtime.snapshot.ServiceSnapshot`
  checkpoints (on disk when the server has a snapshot directory) and
  rehydrated transparently on the tenant's next request.  Because the
  snapshot layer round-trips classifier weights and RNG streams exactly,
  an evicted-then-rehydrated session produces the same verified-claim set
  as one that stayed resident.
"""

from __future__ import annotations

import copy
import time
import zlib
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.api.service import BatchResult, VerificationService
from repro.claims.corpus import ClaimCorpus
from repro.config import ScrutinizerConfig
from repro.core.report import VerificationReport
from repro.errors import (
    AdmissionError,
    BackpressureError,
    ClaimError,
    ConfigurationError,
    ServingError,
    UnknownTenantError,
)
from repro.planning.batching import ClaimSelection
from repro.planning.engine import PlannerEngine
from repro.runtime.pool import WorkerPool
from repro.runtime.snapshot import ServiceSnapshot, SnapshotStore
from repro.serving.scheduler import SchedulerConfig, TenantScheduler

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from repro.store.backend import FeatureBackend

__all__ = [
    "AdmissionPolicy",
    "ServerStats",
    "ServerStatus",
    "TenantBatchOutcome",
    "TenantStatus",
    "VerificationServer",
]

#: Executors a server may use; processes are excluded because sessions
#: live in the scheduler's address space (state would have to round-trip
#: through pickling on every batch).
_SERVER_EXECUTORS = ("serial", "thread")


# ---------------------------------------------------------------------- #
# policy
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounds on what the server will accept and keep in memory."""

    #: Hard bound on the tenant registry; admission of tenant N+1 fails.
    max_tenants: int = 64
    #: How many sessions may be resident (in memory) at once; the rest are
    #: passivated to snapshots and rehydrated on demand (LRU).
    max_resident_sessions: int = 4
    #: Per-tenant cap on undecided claims (pending + queued); ``None``
    #: disables the quota.
    max_pending_claims_per_tenant: int | None = None
    #: Bound on the submission queue between scheduling rounds; a full
    #: queue raises :class:`~repro.errors.BackpressureError`.
    max_queued_submissions: int = 256
    #: Per-tenant cap on cached feature rows
    #: (:attr:`repro.pipeline.feature_store.ClaimFeatureStore.max_rows`);
    #: ``None`` leaves tenant caches unbounded.
    max_cached_features_per_tenant: int | None = None

    def __post_init__(self) -> None:
        if self.max_tenants < 1:
            raise ConfigurationError("max_tenants must be at least 1")
        if self.max_resident_sessions < 1:
            raise ConfigurationError("max_resident_sessions must be at least 1")
        if (
            self.max_pending_claims_per_tenant is not None
            and self.max_pending_claims_per_tenant < 1
        ):
            raise ConfigurationError(
                "max_pending_claims_per_tenant must be at least 1 (or None)"
            )
        if self.max_queued_submissions < 1:
            raise ConfigurationError("max_queued_submissions must be at least 1")
        if (
            self.max_cached_features_per_tenant is not None
            and self.max_cached_features_per_tenant < 1
        ):
            raise ConfigurationError(
                "max_cached_features_per_tenant must be at least 1 (or None)"
            )


# ---------------------------------------------------------------------- #
# bookkeeping
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _Submission:
    tenant_id: str
    claim_ids: tuple[str, ...]


@dataclass
class _TenantRecord:
    """Everything the server tracks about one tenant."""

    tenant_id: str
    admission_index: int
    seed: int
    service: VerificationService | None = None
    #: In-memory passivated state when the server has no snapshot store.
    parked_snapshot: ServiceSnapshot | None = None
    #: Whether a passivated snapshot exists (in memory or on disk).
    passivated: bool = False
    #: Every claim id ever accepted for this tenant; duplicate submissions
    #: are filtered against it so quotas never double-count retries.
    known_claims: set[str] = field(default_factory=set)
    #: Claims accepted while the session was passivated, applied on the
    #: next rehydration so a submit never forces a snapshot round-trip.
    buffered_claims: list[str] = field(default_factory=list)
    queued_claims: int = 0
    submitted_claims: int = 0
    verified_claims: int = 0
    pending_claims: int = 0
    batches_run: int = 0
    evictions: int = 0
    rehydrations: int = 0
    last_scheduled_round: int = -1
    #: Batches this tenant ran on a worker freed mid-round (no barrier).
    steals: int = 0
    #: Rounds spent runnable but without a slot, total and worst streak.
    wait_rounds_total: int = 0
    wait_rounds_max: int = 0
    #: Times the deadline bound forced this tenant to the front.
    deadline_boosts: int = 0
    #: Batches whose selection came out of a fused cross-tenant solve.
    fused_batches: int = 0

    @property
    def resident(self) -> bool:
        return self.service is not None

    @property
    def has_pending_work(self) -> bool:
        return self.pending_claims > 0 or self.queued_claims > 0


@dataclass
class ServerStats:
    """Aggregate counters over the server's lifetime."""

    rounds: int = 0
    batches: int = 0
    claims_verified: int = 0
    sessions_started: int = 0
    evictions: int = 0
    rehydrations: int = 0
    rejected_submissions: int = 0
    peak_resident: int = 0
    #: Batches dispatched to a worker freed mid-round (steal pump refills).
    steals: int = 0
    #: Times a tenant hit the deadline bound and jumped the queue.
    deadline_boosts: int = 0
    #: Rounds that ran a fused cross-tenant planner solve, and how many
    #: tenant batches those fused solves selected.
    fused_rounds: int = 0
    fused_batches: int = 0
    #: Passivations that dropped an out-of-core feature backend's resident
    #: memmap pages (instead of pickling feature bytes into the snapshot).
    store_releases: int = 0


@dataclass(frozen=True)
class TenantStatus:
    """Read-only view of one tenant for status surfaces."""

    tenant_id: str
    resident: bool
    passivated: bool
    submitted_claims: int
    verified_claims: int
    pending_claims: int
    queued_claims: int
    batches_run: int
    evictions: int
    rehydrations: int
    steals: int = 0
    wait_rounds_total: int = 0
    wait_rounds_max: int = 0
    deadline_boosts: int = 0
    fused_batches: int = 0

    @property
    def is_complete(self) -> bool:
        return self.submitted_claims > 0 and self.pending_claims == 0 and (
            self.queued_claims == 0
        )

    @property
    def fusion_hit_rate(self) -> float:
        """Share of this tenant's batches selected by a fused solve."""
        if self.batches_run == 0:
            return 0.0
        return self.fused_batches / self.batches_run


@dataclass(frozen=True)
class ServerStatus:
    """Read-only view of the whole server."""

    tenants: tuple[TenantStatus, ...]
    resident_count: int
    queued_submissions: int
    stats: ServerStats

    @property
    def tenant_count(self) -> int:
        return len(self.tenants)


@dataclass(frozen=True)
class TenantBatchOutcome:
    """One scheduled batch of one tenant, with its scheduling latency."""

    tenant_id: str
    result: BatchResult
    #: Wall-clock seconds this batch took inside the worker (planning,
    #: simulated crowd, retraining) — the per-batch serving latency.
    wall_seconds: float
    #: Whether a freed worker picked this batch up mid-round (a steal)
    #: rather than the round's initial dispatch wave.
    stolen: bool = False
    #: Whether the batch's selection came from a fused cross-tenant solve.
    fused: bool = False


# ---------------------------------------------------------------------- #
# the server
# ---------------------------------------------------------------------- #
class VerificationServer:
    """Serve many tenant verification sessions from one process.

    Parameters
    ----------
    corpus:
        The shared annotated corpus tenants submit claims against.
    config:
        Base system configuration; each tenant runs under a copy whose
        seed is offset by a stable hash of the tenant id, so tenant runs
        are deterministic yet decorrelated.
    policy:
        The :class:`AdmissionPolicy`; defaults bound the registry at 64
        tenants and the resident set at 4 sessions.
    executor:
        ``"thread"`` (default) or ``"serial"`` for the scheduling pool.
    max_workers:
        Width of the scheduling pool; defaults to the resident-session
        bound (one worker per concurrently runnable session).
    snapshot_dir:
        Directory for passivated sessions.  Without one, evicted sessions
        park their snapshots in memory — same round-trip semantics, no
        crash durability.
    pool:
        Share an existing :class:`~repro.runtime.pool.WorkerPool` (e.g.
        with a :class:`~repro.runtime.sharding.ShardedVerificationRunner`).
        The server then never closes it.
    planner_engine:
        Optional :class:`~repro.planning.engine.PlannerEngine` shared by
        every tenant session the server runs.  The engine's constraint-
        skeleton cache is shared across tenants; per-claim score caches are
        keyed by tenant id, so they survive passivation and rehydration and
        tenants never see each other's scores.  When omitted and the
        scheduler has planner fusion on (the default), the server creates
        its own shared engine — cross-tenant fusion needs one.
    scheduler:
        The :class:`~repro.serving.scheduler.SchedulerConfig` of the
        work-stealing tenant scheduler (fairness pressure, starvation
        deadline, planner-fusion knobs).
    feature_backend_factory:
        Opt-in out-of-core feature storage: a callable mapping a tenant id
        to the :class:`~repro.store.backend.FeatureBackend` its session's
        :class:`~repro.pipeline.feature_store.ClaimFeatureStore` should
        use (typically an
        :class:`~repro.store.outofcore.OutOfCoreFeatureBackend` over a
        per-tenant directory).  The factory is called every time the
        tenant's session becomes resident, so it should reattach to the
        same on-disk state rather than create fresh stores.  Passivation
        then *releases* the backend's mapped pages instead of carrying
        feature bytes in the snapshot, and the snapshot records the
        backend's manifest — which is also how a server **without** a
        factory rehydrates such a snapshot (the manifest alone is enough
        to reattach).
    """

    def __init__(
        self,
        corpus: ClaimCorpus,
        config: ScrutinizerConfig | None = None,
        *,
        policy: AdmissionPolicy | None = None,
        executor: str = "thread",
        max_workers: int | None = None,
        snapshot_dir: str | Path | None = None,
        system_name: str = "Serving",
        pool: WorkerPool | None = None,
        planner_engine: PlannerEngine | None = None,
        scheduler: SchedulerConfig | None = None,
        feature_backend_factory: "Callable[[str], FeatureBackend] | None" = None,
    ) -> None:
        if pool is None and executor not in _SERVER_EXECUTORS:
            raise ConfigurationError(
                f"server executor must be one of {_SERVER_EXECUTORS}, got {executor!r}"
            )
        if pool is not None and pool.kind == "process":
            raise ConfigurationError("the server cannot run sessions on a process pool")
        self.corpus = corpus
        self.config = config if config is not None else ScrutinizerConfig()
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.store = SnapshotStore(snapshot_dir) if snapshot_dir is not None else None
        self.stats = ServerStats()
        self._system_name = system_name
        self._owns_pool = pool is None
        self._pool = (
            pool
            if pool is not None
            else WorkerPool(
                executor,
                max_workers=(
                    max_workers
                    if max_workers is not None
                    else self.policy.max_resident_sessions
                ),
            )
        )
        self.scheduler_config = scheduler if scheduler is not None else SchedulerConfig()
        self._scheduler = TenantScheduler(self.scheduler_config)
        if planner_engine is None and self.scheduler_config.fuse_planning:
            planner_engine = PlannerEngine()
        self._planner_engine = planner_engine
        self._feature_backend_factory = feature_backend_factory
        self._tenants: dict[str, _TenantRecord] = {}
        self._queue: deque[_Submission] = deque()
        self._round = 0
        self._closed = False
        #: Warm session template: the corpus-wide featurizer bootstrap is
        #: identical for every tenant (it depends only on the corpus and
        #: the translation config), so it is done once and deep-copied per
        #: session — ~10x cheaper tenant cold starts, with full isolation
        #: because each session gets its own copy of every mutable part.
        self._translator_template = None

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    @property
    def tenant_ids(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    @property
    def planner_engine(self) -> PlannerEngine | None:
        """The engine shared by every tenant session, when one is set."""
        return self._planner_engine

    @property
    def resident_count(self) -> int:
        return sum(1 for record in self._tenants.values() if record.resident)

    @property
    def queued_submissions(self) -> int:
        return len(self._queue)

    @property
    def is_idle(self) -> bool:
        """No queued submissions and no tenant with pending claims."""
        return not self._queue and not any(
            record.has_pending_work for record in self._tenants.values()
        )

    def _record(self, tenant_id: str) -> _TenantRecord:
        try:
            return self._tenants[tenant_id]
        except KeyError:
            raise UnknownTenantError(tenant_id) from None

    def _admit(
        self, tenant_id: str, snapshot: ServiceSnapshot | None = None
    ) -> _TenantRecord:
        record = self._tenants.get(tenant_id)
        if record is not None:
            return record
        if len(self._tenants) >= self.policy.max_tenants:
            self.stats.rejected_submissions += 1
            raise AdmissionError(
                f"tenant registry is full ({self.policy.max_tenants} tenants); "
                f"cannot admit {tenant_id!r}"
            )
        record = _TenantRecord(
            tenant_id=tenant_id,
            admission_index=len(self._tenants),
            # A stable per-tenant seed offset: deterministic across server
            # restarts, decorrelated across tenants.
            seed=self.config.seed + (zlib.crc32(tenant_id.encode("utf-8")) % 8191),
        )
        # A snapshot left by a previous server over the same directory
        # (crash, restart, scale-down) is adopted on admission: the tenant
        # resumes where it stopped instead of starting a fresh session.
        if snapshot is None and self.store is not None and self.store.exists(tenant_id):
            snapshot = self.store.load(tenant_id)
        if snapshot is not None:
            record.passivated = True
            record.pending_claims = snapshot.pending_count
            record.verified_claims = snapshot.verified_count
            record.submitted_claims = snapshot.pending_count + snapshot.verified_count
            if snapshot.session is not None:
                record.known_claims.update(
                    str(claim_id) for claim_id in snapshot.session["pending"]
                )
                record.known_claims.update(
                    str(entry["claim_id"])
                    for entry in snapshot.session["verifications"]
                )
        self._tenants[tenant_id] = record
        return record

    def adopt_tenants(self) -> tuple[str, ...]:
        """Admit every tenant with a snapshot in the server's store.

        A server restarted over an existing snapshot directory calls this
        to resume interrupted tenants without waiting for them to submit
        again; their sessions rehydrate lazily when next scheduled.
        Returns the tenant ids adopted (admitted or already known).
        """
        if self.store is None:
            return ()
        return tuple(
            self._admit(key, snapshot=snapshot).tenant_id
            for key, snapshot in self.store.items()
        )

    def submit(self, tenant_id: str, claim_ids: Sequence[str]) -> int:
        """Queue claims for a tenant; returns how many were queued.

        Admission checks happen here, synchronously: unknown claims are
        rejected (:class:`~repro.errors.ClaimError`), a full registry or an
        exceeded per-tenant quota raises
        :class:`~repro.errors.AdmissionError`, and a full submission queue
        raises :class:`~repro.errors.BackpressureError`.  Work only starts
        at the next :meth:`run_round`.

        Resubmitting claims the tenant already has in flight (or decided)
        is a safe no-op, mirroring session semantics: duplicates neither
        count against the quota nor occupy queue slots, so idempotent
        client retries are never spuriously rejected.
        """
        if self._closed:
            raise ServingError("the server is closed")
        ids = tuple(dict.fromkeys(claim_ids))
        if not ids:
            return 0
        unknown = [claim_id for claim_id in ids if claim_id not in self.corpus]
        if unknown:
            raise ClaimError(f"unknown claims submitted: {unknown[:5]!r}")
        record = self._admit(tenant_id)
        fresh = tuple(
            claim_id for claim_id in ids if claim_id not in record.known_claims
        )
        if not fresh:
            return 0
        quota = self.policy.max_pending_claims_per_tenant
        if quota is not None:
            outstanding = record.pending_claims + record.queued_claims
            if outstanding + len(fresh) > quota:
                self.stats.rejected_submissions += 1
                raise AdmissionError(
                    f"tenant {tenant_id!r} would exceed its pending-claim quota "
                    f"({outstanding} outstanding + {len(fresh)} new > {quota})"
                )
        if len(self._queue) >= self.policy.max_queued_submissions:
            self.stats.rejected_submissions += 1
            raise BackpressureError(
                f"submission queue is full "
                f"({self.policy.max_queued_submissions} requests); retry later"
            )
        self._queue.append(_Submission(tenant_id=tenant_id, claim_ids=fresh))
        record.known_claims.update(fresh)
        record.queued_claims += len(fresh)
        return len(fresh)

    def flush_submissions(self) -> None:
        """Move every queued submission onto its tenant record now.

        Normally the queue drains at the next :meth:`run_round`; recovery
        paths (gateway journal replay) call this between resubmissions so
        an arbitrarily long acked backlog never trips the
        ``max_queued_submissions`` bound that exists to shed *live*
        traffic.
        """
        if self._closed:
            raise ServingError("the server is closed")
        self._drain_queue()

    # ------------------------------------------------------------------ #
    # session residency
    # ------------------------------------------------------------------ #
    def _apply_feature_cap(self, service: VerificationService) -> None:
        cap = self.policy.max_cached_features_per_tenant
        if cap is None:
            return
        suite = getattr(service.translator, "suite", None)
        store = getattr(suite, "feature_store", None)
        if store is not None:
            store.max_rows = cap

    @staticmethod
    def _feature_store_of(service: VerificationService):
        suite = getattr(service.translator, "suite", None)
        return getattr(suite, "feature_store", None)

    def _attach_store_backend(
        self,
        service: VerificationService,
        record: _TenantRecord,
        snapshot: ServiceSnapshot | None = None,
    ) -> None:
        """Put the tenant's feature rows out-of-core when so configured.

        The factory wins when one is set; otherwise a snapshot carrying a
        store manifest is enough to reattach (a restarted server without
        the factory still finds the tenant's rows on disk).  With neither,
        the session keeps its default in-RAM backend.
        """
        feature_store = self._feature_store_of(service)
        if feature_store is None:
            return
        backend: "FeatureBackend | None" = None
        if self._feature_backend_factory is not None:
            backend = self._feature_backend_factory(record.tenant_id)
        elif snapshot is not None and snapshot.store_manifest is not None:
            from repro.store.outofcore import (
                OutOfCoreClaimStore,
                OutOfCoreFeatureBackend,
            )

            backend = OutOfCoreFeatureBackend(
                OutOfCoreClaimStore.from_manifest(snapshot.store_manifest)
            )
        if backend is not None:
            feature_store.attach_backend(backend)

    def _release_store_pages(self, service: VerificationService) -> bool:
        """Drop an out-of-core backend's resident memmap pages, if any."""
        backend = getattr(self._feature_store_of(service), "backend", None)
        release = getattr(backend, "release", None)
        if not callable(release):
            return False
        release()
        self.stats.store_releases += 1
        return True

    def _fresh_translator(self):
        from repro.translation.translator import ClaimTranslator

        if self._translator_template is None:
            template = ClaimTranslator(
                self.corpus.database, config=self.config.translation
            )
            template.bootstrap(
                [annotated.claim for annotated in self.corpus],
                fit_features_only=True,
            )
            self._translator_template = template
        # The read-only database is shared across copies; everything
        # mutable (classifiers, feature store, fit corpus) is per tenant.
        return copy.deepcopy(
            self._translator_template,
            memo={id(self.corpus.database): self.corpus.database},
        )

    def _load_parked_snapshot(self, record: _TenantRecord) -> ServiceSnapshot:
        if self.store is not None:
            return self.store.load(record.tenant_id)
        if record.parked_snapshot is None:
            raise ServingError(
                f"tenant {record.tenant_id!r} is passivated but has no snapshot"
            )
        return record.parked_snapshot

    def _evict_lru(self, excess: int, keep: set[str]) -> None:
        """Passivate ``excess`` unprotected residents, least useful first.

        Ranking is queue-pressure driven rather than pure LRU: idle
        sessions go before ones with pending work, light backlogs before
        heavy ones (a heavy tenant is the most likely next schedule, so
        passivating it would just buy a rehydration), and only then by how
        long ago a session was last scheduled."""
        if excess <= 0:
            return
        evictable = [
            candidate
            for candidate in self._tenants.values()
            if candidate.resident and candidate.tenant_id not in keep
        ]
        evictable.sort(
            key=lambda candidate: (
                candidate.has_pending_work,
                candidate.pending_claims + candidate.queued_claims,
                candidate.last_scheduled_round,
                candidate.admission_index,
            )
        )
        for candidate in evictable[:excess]:
            self._passivate(candidate)

    def _make_room(self, record: _TenantRecord, protected: Sequence[str]) -> None:
        """Evict LRU residents so ``record`` can become resident in-bound."""
        self._evict_lru(
            (self.resident_count + 1) - self.policy.max_resident_sessions,
            set(protected) | {record.tenant_id},
        )

    def _ensure_resident(
        self, record: _TenantRecord, protected: Sequence[str] = ()
    ) -> VerificationService:
        if record.service is not None:
            return record.service
        self._make_room(record, protected)
        if record.passivated:
            from repro.api.builder import ScrutinizerBuilder

            snapshot = self._load_parked_snapshot(record)
            service = ScrutinizerBuilder.from_snapshot(
                snapshot, self.corpus
            ).build_service()
            record.rehydrations += 1
            self.stats.rehydrations += 1
            self._attach_store_backend(service, record, snapshot)
        else:
            service = VerificationService(
                self.corpus,
                replace(self.config, seed=record.seed),
                translator=self._fresh_translator(),
                system_name=f"{self._system_name}/{record.tenant_id}",
            )
            self.stats.sessions_started += 1
            self._attach_store_backend(service, record)
        self._apply_feature_cap(service)
        if self._planner_engine is not None:
            # One engine for every tenant: shared skeleton cache, per-tenant
            # score caches keyed by tenant id so a passivated tenant's scores
            # are still warm after rehydration.
            service.use_planner_engine(self._planner_engine, cache_key=record.tenant_id)
        record.service = service
        record.parked_snapshot = None
        if record.buffered_claims:
            service.submit(record.buffered_claims)
            record.buffered_claims.clear()
            record.pending_claims = service.pending_count
        self.stats.peak_resident = max(self.stats.peak_resident, self.resident_count)
        return service

    def _passivate(self, record: _TenantRecord) -> None:
        service = record.service
        if service is None:
            return
        snapshot = service.snapshot(metadata={"tenant_id": record.tenant_id})
        # Out-of-core sessions park their matrix as mapped files, not as
        # snapshot bytes: flush and drop the resident pages instead.  (The
        # snapshot already recorded the backend's manifest.)
        self._release_store_pages(service)
        if self.store is not None:
            self.store.save(record.tenant_id, snapshot)
            record.parked_snapshot = None
        else:
            record.parked_snapshot = snapshot
        record.passivated = True
        record.service = None
        record.evictions += 1
        self.stats.evictions += 1

    def evict(self, tenant_id: str) -> bool:
        """Passivate a tenant's session now; ``True`` if one was resident."""
        record = self._record(tenant_id)
        if record.service is None:
            return False
        self._passivate(record)
        return True

    def _evict_over_capacity(self, protected: Sequence[str] = ()) -> None:
        """LRU-evict resident sessions beyond ``max_resident_sessions``."""
        self._evict_lru(
            self.resident_count - self.policy.max_resident_sessions, set(protected)
        )

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _drain_queue(self) -> None:
        while self._queue:
            submission = self._queue.popleft()
            record = self._tenants[submission.tenant_id]
            if record.service is not None:
                record.service.submit(submission.claim_ids)
                record.pending_claims = record.service.pending_count
            else:
                # Never rehydrate a session just to enqueue claims: park
                # them on the record; they reach the session the next time
                # it is resident.  The pending estimate is exact because
                # submit() only queues claims the tenant has never seen.
                record.buffered_claims.extend(submission.claim_ids)
                record.pending_claims += len(submission.claim_ids)
            record.queued_claims = max(0, record.queued_claims - len(submission.claim_ids))
            record.submitted_claims += len(submission.claim_ids)

    def _fused_selections(
        self, scheduled: Sequence[_TenantRecord]
    ) -> dict[str, ClaimSelection]:
        """One shared planner solve for the round's fusable tenants.

        Collects each scheduled tenant's
        :meth:`~repro.api.service.VerificationService.planning_inputs`
        (``None`` means that tenant cannot be fused exactly — custom
        selector, sequential baseline, nothing pending) and solves them
        with a single
        :meth:`~repro.planning.engine.PlannerEngine.plan_fused` call.
        Returns ``tenant_id -> ClaimSelection`` for the fused tenants;
        everyone else runs its own in-batch solve as before.  Fusion is
        exact, so this only changes *where* selection happens, never what
        is selected.
        """
        if self._planner_engine is None or not self.scheduler_config.fuse_planning:
            return {}
        limit = self.scheduler_config.max_fused_pool
        owners: list[str] = []
        requests = []
        for record in scheduled:
            service = record.service
            if service is None:  # pragma: no cover - residents ensured upstream
                continue
            request = service.planning_inputs()
            if request is None:
                continue
            if limit is not None and len(request.candidates) > limit:
                continue
            owners.append(record.tenant_id)
            requests.append(request)
        if len(requests) < 2:
            # Nothing cross-tenant to share; the tenant's own run_batch
            # path solves it with identical results and fewer moving parts.
            return {}
        selections = self._planner_engine.plan_fused(requests)
        self.stats.fused_rounds += 1
        return dict(zip(owners, selections))

    def run_round(self) -> list[TenantBatchOutcome]:
        """Run one scheduling round without a barrier.

        Drains the queue, asks the :class:`~repro.serving.scheduler.
        TenantScheduler` for up to ``max_resident_sessions`` tenants
        (weighted-deficit fair, deadline-bounded), fuses their batch
        selections into one shared planner solve, then pumps the batches
        through the pool with ``submit``/``wait_any``: every completion
        immediately hands the freed worker the round's next tenant (a
        *steal*) instead of waiting for the whole wave.

        Tenants whose sessions are passivated but still have pending
        claims are rehydrated before running.  Returns the batch outcomes
        of this round in completion order (empty when the server is idle).
        """
        if self._closed:
            raise ServingError("the server is closed")
        self._drain_queue()
        runnable = [
            record for record in self._tenants.values() if record.pending_claims > 0
        ]
        if not runnable:
            return []
        self._round += 1
        decision = self._scheduler.select(
            runnable, min(len(runnable), self.policy.max_resident_sessions)
        )
        scheduled = [self._tenants[tenant_id] for tenant_id in decision.scheduled]
        for tenant_id in decision.deadline_boosted:
            self._tenants[tenant_id].deadline_boosts += 1
            self.stats.deadline_boosts += 1
        for tenant_id in decision.waiting:
            record = self._tenants[tenant_id]
            record.wait_rounds_total += 1
            record.wait_rounds_max = max(
                record.wait_rounds_max, self._scheduler.waiting_rounds(tenant_id)
            )
        protected = tuple(record.tenant_id for record in scheduled)
        for record in scheduled:
            # Residency only changes between rounds, never while workers
            # run; scheduled tenants are protected from the LRU sweep.
            self._ensure_resident(record, protected=protected)
            record.last_scheduled_round = self._round
        self._evict_over_capacity(protected=protected)
        self.stats.peak_resident = max(self.stats.peak_resident, self.resident_count)
        selections = self._fused_selections(scheduled)

        def _run_one(
            record: _TenantRecord,
        ) -> tuple[str, BatchResult | None, float]:
            started = time.perf_counter()
            assert record.service is not None
            result = record.service.run_batch(
                selection=selections.get(record.tenant_id)
            )
            return record.tenant_id, result, time.perf_counter() - started

        # The steal pump: fill the pool, then refill every freed slot from
        # the remainder of the schedule as completions arrive.  Dispatch
        # order is the scheduler's; completion order is the pool's.
        width = self._pool.width or len(scheduled)
        backlog = deque(scheduled)
        in_flight: dict[object, tuple[str, bool]] = {}
        initial_wave = True
        outcomes: list[TenantBatchOutcome] = []
        while backlog or in_flight:
            while backlog and len(in_flight) < max(1, width):
                record = backlog.popleft()
                future = self._pool.submit(_run_one, record)
                in_flight[future] = (record.tenant_id, not initial_wave)
            initial_wave = False
            done, _ = WorkerPool.wait_any(list(in_flight))
            for future in done:
                tenant_id, stolen = in_flight.pop(future)
                result_tenant_id, result, wall = future.result()
                record = self._tenants[result_tenant_id]
                if stolen:
                    record.steals += 1
                    self.stats.steals += 1
                if result is None:
                    record.pending_claims = 0
                    continue
                fused = result_tenant_id in selections
                if fused:
                    record.fused_batches += 1
                    self.stats.fused_batches += 1
                record.batches_run += 1
                record.verified_claims += result.batch_size
                record.pending_claims = result.pending_after
                self.stats.batches += 1
                self.stats.claims_verified += result.batch_size
                outcomes.append(
                    TenantBatchOutcome(
                        tenant_id=result_tenant_id,
                        result=result,
                        wall_seconds=wall,
                        stolen=stolen,
                        fused=fused,
                    )
                )
        self.stats.rounds += 1
        return outcomes

    def run_until_idle(self, max_rounds: int | None = None) -> list[TenantBatchOutcome]:
        """Run rounds until every submitted claim everywhere is decided.

        Returns the concatenated outcomes of all rounds run.  ``max_rounds``
        bounds the loop for staged runs (crash drills, benchmarks).
        """
        outcomes: list[TenantBatchOutcome] = []
        rounds = 0
        while not self.is_idle:
            if max_rounds is not None and rounds >= max_rounds:
                break
            round_outcomes = self.run_round()
            rounds += 1
            if not round_outcomes and not self._queue:
                break
            outcomes.extend(round_outcomes)
        return outcomes

    # ------------------------------------------------------------------ #
    # results & introspection
    # ------------------------------------------------------------------ #
    def report(self, tenant_id: str) -> VerificationReport:
        """The tenant's verification report, resident or passivated."""
        record = self._record(tenant_id)
        if record.service is not None:
            return record.service.report
        if record.passivated:
            snapshot = self._load_parked_snapshot(record)
            if snapshot.report is not None:
                return VerificationReport.from_dict(snapshot.report)
        return VerificationReport(
            system_name=f"{self._system_name}/{tenant_id}",
            checker_count=self.config.checker_count,
        )

    def verified_claim_ids(self, tenant_id: str) -> tuple[str, ...]:
        """Which claims the tenant has had verified so far (sorted)."""
        return tuple(
            sorted(
                verification.claim_id
                for verification in self.report(tenant_id).verifications
            )
        )

    def tenant_status(self, tenant_id: str) -> TenantStatus:
        record = self._record(tenant_id)
        return TenantStatus(
            tenant_id=record.tenant_id,
            resident=record.resident,
            passivated=record.passivated,
            submitted_claims=record.submitted_claims,
            verified_claims=record.verified_claims,
            pending_claims=record.pending_claims,
            queued_claims=record.queued_claims,
            batches_run=record.batches_run,
            evictions=record.evictions,
            rehydrations=record.rehydrations,
            steals=record.steals,
            wait_rounds_total=record.wait_rounds_total,
            wait_rounds_max=record.wait_rounds_max,
            deadline_boosts=record.deadline_boosts,
            fused_batches=record.fused_batches,
        )

    def status(self) -> ServerStatus:
        return ServerStatus(
            tenants=tuple(
                self.tenant_status(tenant_id) for tenant_id in self._tenants
            ),
            resident_count=self.resident_count,
            queued_submissions=len(self._queue),
            stats=self.stats,
        )

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Passivate every resident session and release the pool.

        With a snapshot directory, every tenant's state survives on disk —
        a fresh server over the same directory picks the tenants back up
        on their next submission (the resume-after-crash scenario).
        """
        if self._closed:
            return
        # Queued submissions move onto their tenant records first; parked
        # claims must then reach the snapshots, or a restarted server
        # would lose work it had already accepted.
        self._drain_queue()
        for record in self._tenants.values():
            if record.buffered_claims:
                self._ensure_resident(record)
            if record.resident:
                self._passivate(record)
        if self._owns_pool:
            self._pool.close()
        self._closed = True

    def __enter__(self) -> "VerificationServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
