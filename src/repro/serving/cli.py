"""``python -m repro.serving`` — drive the multi-tenant server.

Two verbs over the deterministic synthetic workload:

``run``
    Generate a corpus, script mixed tenant traffic across ``--tenants``
    tenants (bursty / steady / resume-after-crash scenarios — or
    Zipf-skewed bursts with ``--zipf``), and serve it with admission
    control.  The summary reports p50/p95/p99 batch latency and the
    work-stealing scheduler's counters (steals, deadline boosts, fused
    rounds)::

        python -m repro.serving run --claims 120 --tenants 8 \\
            --max-resident 4 --snapshot-dir ./tenants --report summary.json

``status``
    Inspect a snapshot directory read-only: every passivated tenant's
    verified/pending counts and completion.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.config import BatchingConfig, ScrutinizerConfig
from repro.errors import ReproError
from repro.runtime.snapshot import SnapshotStore
from repro.serving.server import AdmissionPolicy, VerificationServer
from repro.serving.workloads import (
    SCENARIO_KINDS,
    build_workload,
    build_zipf_workload,
    drive_workload,
    percentile,
)
from repro.synth.energy_data import EnergyDataConfig
from repro.synth.report_generator import SyntheticCorpusConfig, generate_corpus

__all__ = ["main", "workload_corpus"]


def workload_corpus(claim_count: int, seed: int):
    """The deterministic synthetic corpus every serving surface shares.

    Public because the gateway CLI and the e2e kill-and-replay test must
    rebuild byte-identical corpora from ``(claim_count, seed)`` alone —
    the gateway journal's manifest records exactly these two numbers.
    """
    return generate_corpus(
        SyntheticCorpusConfig(
            claim_count=claim_count,
            section_count=max(4, claim_count // 15),
            explicit_fraction=0.5,
            error_fraction=0.25,
            data=EnergyDataConfig(
                relation_count=max(6, claim_count // 8),
                rows_per_relation=14,
                seed=seed + 1,
            ),
            seed=seed,
        )
    )


def _cmd_run(args: argparse.Namespace, out) -> int:
    corpus = workload_corpus(args.claims, args.seed)
    config = ScrutinizerConfig(
        checker_count=3,
        options_per_property=10,
        batching=BatchingConfig(min_batch_size=1, max_batch_size=args.batch_size),
        seed=args.seed,
    )
    policy = AdmissionPolicy(
        max_tenants=max(args.tenants, 1),
        max_resident_sessions=args.max_resident,
        max_pending_claims_per_tenant=args.quota,
        max_queued_submissions=args.queue_limit,
    )
    if args.zipf is not None:
        workload = build_zipf_workload(
            corpus.claim_ids,
            tenant_count=args.tenants,
            seed=args.seed,
            exponent=args.zipf,
        )
    else:
        workload = build_workload(
            corpus.claim_ids,
            tenant_count=args.tenants,
            seed=args.seed,
            mix=tuple(args.mix.split(",")),
        )
    with VerificationServer(
        corpus,
        config,
        policy=policy,
        executor=args.executor,
        snapshot_dir=args.snapshot_dir,
    ) as server:
        result = drive_workload(server, workload)
        # Copied before close() so shutdown passivations don't count as
        # workload evictions in the summary.
        stats = copy.copy(server.stats)
    latencies = result.batch_latencies
    print(
        f"served {result.verified_count}/{workload.claim_count} claims for "
        f"{workload.tenant_count} tenant(s) in {result.wall_seconds:.2f}s "
        f"({result.claims_per_second:.1f} claims/s, {result.rounds} rounds)",
        file=out,
    )
    print(
        f"batches {stats.batches}, evictions {stats.evictions}, "
        f"rehydrations {stats.rehydrations}, peak resident {stats.peak_resident}, "
        f"deferred submissions {result.deferred_submissions}",
        file=out,
    )
    print(
        f"batch latency p50 {percentile(latencies, 50) * 1000.0:.1f}ms, "
        f"p95 {percentile(latencies, 95) * 1000.0:.1f}ms, "
        f"p99 {percentile(latencies, 99) * 1000.0:.1f}ms",
        file=out,
    )
    fusion_rate = stats.fused_batches / stats.batches if stats.batches else 0.0
    print(
        f"scheduler: {stats.steals} steals, {stats.deadline_boosts} deadline "
        f"boosts, {stats.fused_rounds} fused rounds "
        f"({stats.fused_batches} batches, {fusion_rate:.0%} fusion hit rate)",
        file=out,
    )
    for scenario in workload.scenarios:
        verified = len(result.verified_by_tenant.get(scenario.tenant_id, ()))
        print(
            f"  {scenario.tenant_id} [{scenario.kind}]: "
            f"{verified}/{scenario.claim_count} verified",
            file=out,
        )
    if args.snapshot_dir:
        print(f"tenant snapshots in {args.snapshot_dir}", file=out)
    if args.report:
        payload = {
            "claims": workload.claim_count,
            "tenants": workload.tenant_count,
            "verified": result.verified_count,
            "rounds": result.rounds,
            "wall_seconds": result.wall_seconds,
            "claims_per_second": result.claims_per_second,
            "p50_batch_latency_seconds": percentile(latencies, 50),
            "p95_batch_latency_seconds": percentile(latencies, 95),
            "p99_batch_latency_seconds": percentile(latencies, 99),
            "deferred_submissions": result.deferred_submissions,
            "evictions": stats.evictions,
            "rehydrations": stats.rehydrations,
            "scheduler": {
                "steals": stats.steals,
                "deadline_boosts": stats.deadline_boosts,
                "fused_rounds": stats.fused_rounds,
                "fused_batches": stats.fused_batches,
                "fusion_hit_rate": fusion_rate,
            },
            "by_tenant": {
                scenario.tenant_id: {
                    "kind": scenario.kind,
                    "submitted": scenario.claim_count,
                    "verified": len(result.verified_by_tenant.get(scenario.tenant_id, ())),
                }
                for scenario in workload.scenarios
            },
        }
        Path(args.report).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"summary written to {args.report}", file=out)
    return 0


def _cmd_status(args: argparse.Namespace, out) -> int:
    store = SnapshotStore(args.snapshot_dir)
    entries = store.items()
    if not entries:
        print(f"no tenant snapshots in {args.snapshot_dir}", file=out)
        return 0
    total_verified = total_pending = 0
    for key, snapshot in entries:
        total_verified += snapshot.verified_count
        total_pending += snapshot.pending_count
        state = "complete" if snapshot.is_complete else "in progress"
        print(
            f"  {key}: {snapshot.batch_index} batches, "
            f"{snapshot.verified_count} verified, {snapshot.pending_count} "
            f"pending ({state})",
            file=out,
        )
    print(f"total: {total_verified} verified, {total_pending} pending", file=out)
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving",
        description="Multi-tenant verification serving over a synthetic workload.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="serve a scripted multi-tenant workload")
    run.add_argument("--claims", type=int, default=120, help="workload size")
    run.add_argument("--seed", type=int, default=7, help="workload seed")
    run.add_argument("--tenants", type=int, default=8, help="tenant count")
    run.add_argument("--batch-size", type=int, default=20, help="claims per batch")
    run.add_argument(
        "--max-resident",
        type=int,
        default=4,
        help="sessions kept in memory; the rest passivate to snapshots (LRU)",
    )
    run.add_argument(
        "--quota",
        type=int,
        default=None,
        help="per-tenant pending-claim quota (default: unlimited)",
    )
    run.add_argument(
        "--queue-limit",
        type=int,
        default=256,
        help="submission queue bound before backpressure",
    )
    run.add_argument(
        "--executor",
        choices=("serial", "thread"),
        default="thread",
        help="worker pool running tenant batches",
    )
    run.add_argument(
        "--mix",
        default=",".join(SCENARIO_KINDS),
        help="comma-separated scenario mix cycled across tenants",
    )
    run.add_argument(
        "--zipf",
        type=float,
        default=None,
        metavar="EXPONENT",
        help=(
            "replace the scenario mix with Zipf-skewed bursty traffic at "
            "this exponent (hot tenants get most claims; claims are shared "
            "across tenants)"
        ),
    )
    run.add_argument(
        "--snapshot-dir",
        default=None,
        help="directory for passivated tenant sessions (enables crash durability)",
    )
    run.add_argument("--report", default=None, help="write a JSON summary here")

    status = commands.add_parser("status", help="inspect a tenant snapshot directory")
    status.add_argument("--snapshot-dir", required=True, help="snapshot directory")
    return parser


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {"run": _cmd_run, "status": _cmd_status}
    try:
        return handlers[args.command](args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
