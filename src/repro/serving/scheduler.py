"""Work-stealing, deadline-aware tenant scheduling for the serving layer.

The original server scheduled rounds with a global barrier: pick the
``max_resident_sessions`` least-recently-scheduled tenants, ``map`` them
over the pool, wait for *all* of them, repeat.  Past a handful of tenants
that shape collapses — every round is as slow as its slowest tenant, and
freed workers idle behind the barrier while runnable tenants wait whole
rounds for a slot.

:class:`TenantScheduler` replaces the round-robin pick with
**weighted-deficit scheduling** and the barrier with a **steal pump**
(driven by :meth:`repro.runtime.pool.WorkerPool.submit` /
:meth:`~repro.runtime.pool.WorkerPool.wait_any` in the server):

* every runnable tenant accrues *deficit credit* each round in proportion
  to its backlog pressure — ``weight = (1 + pending) ** pressure_exponent``
  — and being scheduled costs one unit, so tenants that keep losing slots
  accumulate an ever-stronger claim on the next one (weighted deficit
  round-robin, the classic fair-queueing construction);
* a runnable tenant that has waited ``deadline_rounds`` consecutive
  rounds without a slot jumps the queue outright, which turns fairness
  from a tendency into a bound: no tenant waits more than
  ``deadline_rounds`` plus one drain of the forced cohort;
* the server dispatches the chosen tenants through ``submit`` and refills
  each freed worker from the remainder of the round's schedule instead of
  waiting on a barrier — the refill is counted as a *steal*.

The scheduler is deliberately ignorant of services, pools and snapshots:
it sees lightweight tenant views (anything with ``tenant_id``,
``pending_claims``, ``admission_index`` and ``last_scheduled_round``
attributes) and returns a :class:`RoundDecision`.  The server owns all
bookkeeping; this module owns only the policy, which keeps it
independently testable (including under hypothesis-generated adversarial
arrival orders).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ConfigurationError

__all__ = [
    "RoundDecision",
    "SchedulerConfig",
    "TenantScheduler",
    "TenantView",
]


class TenantView(Protocol):
    """The minimal tenant surface the scheduler reads (duck-typed)."""

    tenant_id: str
    admission_index: int
    pending_claims: int
    last_scheduled_round: int


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the work-stealing tenant scheduler."""

    #: Backlog pressure: a runnable tenant's share of each round's credit
    #: is proportional to ``(1 + pending) ** pressure_exponent``.  ``0``
    #: gives pure (unweighted) deficit round-robin; ``1`` weighs strictly
    #: by backlog.  The default square root rewards backlog without letting
    #: one huge tenant monopolise the pool.
    pressure_exponent: float = 0.5
    #: Hard anti-starvation bound: a runnable tenant unscheduled for this
    #: many consecutive rounds jumps the queue in the next round.
    deadline_rounds: int = 8
    #: Fuse the scheduled tenants' batch selections into one shared
    #: :meth:`repro.planning.engine.PlannerEngine.plan_fused` solve per
    #: round (exact; split back per tenant after selection).
    fuse_planning: bool = True
    #: Tenants whose candidate pool exceeds this many claims solve solo
    #: even when fusion is on; ``None`` fuses every eligible tenant.
    max_fused_pool: int | None = None

    def __post_init__(self) -> None:
        if self.pressure_exponent < 0:
            raise ConfigurationError("pressure_exponent must be non-negative")
        if self.deadline_rounds < 1:
            raise ConfigurationError("deadline_rounds must be at least 1")
        if self.max_fused_pool is not None and self.max_fused_pool < 1:
            raise ConfigurationError("max_fused_pool must be at least 1 (or None)")


@dataclass(frozen=True)
class RoundDecision:
    """What one scheduling round decided, in dispatch order."""

    #: Tenants granted a batch this round, in dispatch order (deadline
    #: jumpers first, then by descending deficit).
    scheduled: tuple[str, ...]
    #: The subset of ``scheduled`` that jumped the queue on the deadline.
    deadline_boosted: tuple[str, ...]
    #: Runnable tenants that did *not* get a slot this round.
    waiting: tuple[str, ...]


@dataclass
class _TenantState:
    """Per-tenant fairness state (scheduler-private)."""

    deficit: float = 0.0
    #: Consecutive rounds the tenant has been runnable without a slot.
    waiting_rounds: int = 0


@dataclass
class TenantScheduler:
    """Weighted-deficit, deadline-bounded tenant picker (one per server)."""

    config: SchedulerConfig = field(default_factory=SchedulerConfig)
    _states: dict[str, _TenantState] = field(default_factory=dict)

    def waiting_rounds(self, tenant_id: str) -> int:
        """How many consecutive rounds the tenant has waited for a slot."""
        state = self._states.get(tenant_id)
        return state.waiting_rounds if state is not None else 0

    def forget(self, tenant_id: str) -> None:
        """Drop fairness state (tenant removed or fully drained)."""
        self._states.pop(tenant_id, None)

    def select(
        self, runnable: list[TenantView], quota: int
    ) -> RoundDecision:
        """Pick up to ``quota`` distinct tenants for this round.

        ``runnable`` is every tenant with pending work; ``quota`` is the
        round's slot budget (the server passes
        ``min(len(runnable), max_resident_sessions)``).  Tenants absent
        from ``runnable`` have drained: their deficit resets, exactly like
        a deficit-round-robin flow whose queue empties — credit never
        accrues while idle.
        """
        if quota < 0:
            raise ConfigurationError("quota must be non-negative")
        runnable_ids = {view.tenant_id for view in runnable}
        for tenant_id in list(self._states):
            if tenant_id not in runnable_ids:
                self.forget(tenant_id)
        if not runnable or quota == 0:
            return RoundDecision(scheduled=(), deadline_boosted=(), waiting=())
        quota = min(quota, len(runnable))
        weights = {
            view.tenant_id: (1.0 + max(0, view.pending_claims))
            ** self.config.pressure_exponent
            for view in runnable
        }
        total_weight = sum(weights.values())
        for view in runnable:
            state = self._states.setdefault(view.tenant_id, _TenantState())
            state.deficit += quota * weights[view.tenant_id] / total_weight
        forced = [
            view
            for view in runnable
            if self._states[view.tenant_id].waiting_rounds
            >= self.config.deadline_rounds
        ]
        forced.sort(
            key=lambda view: (
                -self._states[view.tenant_id].waiting_rounds,
                view.admission_index,
            )
        )
        forced_ids = {view.tenant_id for view in forced}
        remainder = [view for view in runnable if view.tenant_id not in forced_ids]
        remainder.sort(
            key=lambda view: (
                -self._states[view.tenant_id].deficit,
                view.last_scheduled_round,
                view.admission_index,
            )
        )
        ordered = forced + remainder
        scheduled = ordered[:quota]
        scheduled_ids = tuple(view.tenant_id for view in scheduled)
        boosted = tuple(
            view.tenant_id for view in forced if view.tenant_id in set(scheduled_ids)
        )
        waiting: list[str] = []
        for view in runnable:
            state = self._states[view.tenant_id]
            if view.tenant_id in set(scheduled_ids):
                state.deficit -= 1.0
                state.waiting_rounds = 0
            else:
                state.waiting_rounds += 1
                waiting.append(view.tenant_id)
        return RoundDecision(
            scheduled=scheduled_ids,
            deadline_boosted=boosted,
            waiting=tuple(waiting),
        )
