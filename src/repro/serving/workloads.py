"""Scenario-driven tenant traffic for exercising the serving layer.

A :class:`ServingWorkload` is a deterministic script of mixed tenant
behaviour over scheduling rounds:

* **bursty** tenants submit their whole claim set in one request, at a
  staggered arrival round — the thundering-herd shape;
* **steady** tenants stream a few claims every round — the interactive
  fact-checker shape;
* **resume** tenants submit early and then *crash* (their session is
  evicted to a snapshot mid-run) and continue on the next request — the
  durability shape the snapshot layer guarantees.

:func:`build_workload` partitions a claim population across tenants and
assigns scenarios from a mix, all seeded; :func:`drive_workload` replays
the script against any :class:`~repro.serving.server.VerificationServer`,
retrying submissions the server rejects with backpressure on a later
round, exactly like a well-behaved client.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import AdmissionError, BackpressureError, ConfigurationError
from repro.serving.server import TenantBatchOutcome, VerificationServer

__all__ = [
    "SCENARIO_KINDS",
    "CrashEvent",
    "ServingWorkload",
    "SubmissionEvent",
    "TenantScenario",
    "WorkloadRunResult",
    "build_workload",
    "build_zipf_workload",
    "drive_workload",
    "percentile",
]


def percentile(values: Sequence[float], percent: float) -> float:
    """Nearest-rank percentile of serving latencies (0 for no samples).

    The single definition feeds both the CLI summary and the committed
    serving benchmark, so their p95 numbers cannot drift apart.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(percent / 100.0 * (len(ordered) - 1))))
    return ordered[rank]

#: The tenant behaviours the generator knows how to script.
SCENARIO_KINDS = ("bursty", "steady", "resume")

#: How many rounds a steady tenant spreads its claims over.
_STEADY_SPAN = 4
#: The round at which a resume tenant's session crashes.
_CRASH_ROUND = 2


@dataclass(frozen=True)
class TenantScenario:
    """One tenant's behaviour and claim allotment."""

    tenant_id: str
    kind: str
    claim_ids: tuple[str, ...]

    @property
    def claim_count(self) -> int:
        return len(self.claim_ids)


@dataclass(frozen=True)
class SubmissionEvent:
    """One client request: a tenant submits claims at a given round."""

    round_index: int
    tenant_id: str
    claim_ids: tuple[str, ...]


@dataclass(frozen=True)
class CrashEvent:
    """A tenant's session is lost (evicted to its snapshot) at a round."""

    round_index: int
    tenant_id: str


@dataclass(frozen=True)
class ServingWorkload:
    """A deterministic multi-tenant traffic script."""

    scenarios: tuple[TenantScenario, ...]
    submissions: tuple[SubmissionEvent, ...]
    crashes: tuple[CrashEvent, ...]
    seed: int

    @property
    def tenant_count(self) -> int:
        return len(self.scenarios)

    @property
    def claim_count(self) -> int:
        return sum(scenario.claim_count for scenario in self.scenarios)

    @property
    def last_event_round(self) -> int:
        rounds = [event.round_index for event in self.submissions]
        rounds.extend(event.round_index for event in self.crashes)
        return max(rounds, default=0)


def build_workload(
    claim_ids: Sequence[str],
    *,
    tenant_count: int,
    seed: int = 0,
    mix: Sequence[str] = SCENARIO_KINDS,
) -> ServingWorkload:
    """Script mixed tenant traffic over a claim population.

    Claims are dealt round-robin across ``tenant_count`` tenants (every
    claim goes to exactly one tenant), scenario kinds cycle through
    ``mix``, and arrival rounds are drawn from a seeded generator — the
    same inputs always produce the same script.
    """
    if tenant_count < 1:
        raise ConfigurationError("tenant_count must be at least 1")
    if not claim_ids:
        raise ConfigurationError("a workload needs at least one claim")
    unknown_kinds = [kind for kind in mix if kind not in SCENARIO_KINDS]
    if unknown_kinds:
        raise ConfigurationError(
            f"unknown scenario kinds {unknown_kinds!r}; choose from {SCENARIO_KINDS}"
        )
    if not mix:
        raise ConfigurationError("the scenario mix must name at least one kind")
    rng = np.random.default_rng(seed)
    allotments: list[list[str]] = [[] for _ in range(tenant_count)]
    for index, claim_id in enumerate(claim_ids):
        allotments[index % tenant_count].append(claim_id)

    scenarios: list[TenantScenario] = []
    submissions: list[SubmissionEvent] = []
    crashes: list[CrashEvent] = []
    for index, allotted in enumerate(allotments):
        if not allotted:
            continue
        tenant_id = f"tenant-{index:02d}"
        kind = mix[index % len(mix)]
        scenarios.append(
            TenantScenario(tenant_id=tenant_id, kind=kind, claim_ids=tuple(allotted))
        )
        if kind == "bursty":
            arrival = int(rng.integers(0, 3))
            submissions.append(
                SubmissionEvent(
                    round_index=arrival, tenant_id=tenant_id, claim_ids=tuple(allotted)
                )
            )
        elif kind == "steady":
            span = min(_STEADY_SPAN, len(allotted))
            chunks = np.array_split(np.asarray(allotted, dtype=object), span)
            for offset, chunk in enumerate(chunks):
                if len(chunk) == 0:
                    continue
                submissions.append(
                    SubmissionEvent(
                        round_index=offset,
                        tenant_id=tenant_id,
                        claim_ids=tuple(str(claim_id) for claim_id in chunk),
                    )
                )
        else:  # resume
            submissions.append(
                SubmissionEvent(
                    round_index=0, tenant_id=tenant_id, claim_ids=tuple(allotted)
                )
            )
            crashes.append(CrashEvent(round_index=_CRASH_ROUND, tenant_id=tenant_id))
    submissions.sort(key=lambda event: (event.round_index, event.tenant_id))
    return ServingWorkload(
        scenarios=tuple(scenarios),
        submissions=tuple(submissions),
        crashes=tuple(crashes),
        seed=seed,
    )


def build_zipf_workload(
    claim_ids: Sequence[str],
    *,
    tenant_count: int,
    seed: int = 0,
    exponent: float = 1.1,
    total_claims: int | None = None,
) -> ServingWorkload:
    """Script Zipf-skewed bursty traffic over a shared claim population.

    Real multi-tenant traffic is heavy-tailed: a few hot tenants submit
    most of the work while a long tail submits a claim or two.  Tenant at
    popularity rank ``r`` receives a share proportional to
    ``1 / r**exponent`` of ``total_claims`` submissions (at least one
    each), drawn *with reuse across tenants* from ``claim_ids`` — distinct
    tenants may check the same claim, which is exactly the serving
    scenario (sessions are isolated; only the corpus is shared).  Every
    tenant submits as one burst at a staggered arrival round, so large
    tenant counts produce the thundering-herd admission pattern the
    scheduler's fairness and passivation pressure are built for.

    ``total_claims`` defaults to ``max(len(claim_ids), tenant_count)``.
    The same inputs always produce the same script.
    """
    if tenant_count < 1:
        raise ConfigurationError("tenant_count must be at least 1")
    if not claim_ids:
        raise ConfigurationError("a workload needs at least one claim")
    if exponent <= 0:
        raise ConfigurationError("the Zipf exponent must be positive")
    population = tuple(dict.fromkeys(claim_ids))
    budget = (
        total_claims
        if total_claims is not None
        else max(len(population), tenant_count)
    )
    if budget < tenant_count:
        raise ConfigurationError(
            "total_claims must give every tenant at least one claim"
        )
    rng = np.random.default_rng(seed)
    shares = np.array(
        [1.0 / (rank + 1) ** exponent for rank in range(tenant_count)]
    )
    shares /= shares.sum()
    counts = np.maximum(1, np.floor(shares * budget).astype(int))
    counts = np.minimum(counts, len(population))
    scenarios: list[TenantScenario] = []
    submissions: list[SubmissionEvent] = []
    for index in range(tenant_count):
        tenant_id = f"tenant-{index:03d}"
        drawn = rng.choice(len(population), size=int(counts[index]), replace=False)
        allotted = tuple(population[int(position)] for position in sorted(drawn))
        scenarios.append(
            TenantScenario(tenant_id=tenant_id, kind="bursty", claim_ids=allotted)
        )
        submissions.append(
            SubmissionEvent(
                round_index=int(rng.integers(0, 4)),
                tenant_id=tenant_id,
                claim_ids=allotted,
            )
        )
    submissions.sort(key=lambda event: (event.round_index, event.tenant_id))
    return ServingWorkload(
        scenarios=tuple(scenarios),
        submissions=tuple(submissions),
        crashes=(),
        seed=seed,
    )


@dataclass(frozen=True)
class WorkloadRunResult:
    """What happened when a workload was driven against a server."""

    outcomes: tuple[TenantBatchOutcome, ...]
    rounds: int
    wall_seconds: float
    #: Submissions initially rejected with backpressure and retried later.
    deferred_submissions: int
    verified_by_tenant: dict[str, tuple[str, ...]]

    @property
    def verified_count(self) -> int:
        return sum(len(claims) for claims in self.verified_by_tenant.values())

    @property
    def batch_latencies(self) -> tuple[float, ...]:
        return tuple(outcome.wall_seconds for outcome in self.outcomes)

    @property
    def claims_per_second(self) -> float:
        return self.verified_count / self.wall_seconds if self.wall_seconds > 0 else 0.0


def drive_workload(
    server: VerificationServer,
    workload: ServingWorkload,
    *,
    max_rounds: int = 500,
) -> WorkloadRunResult:
    """Replay a workload script against a server until it drains.

    Each scheduling round first applies the script's crash events (the
    tenant's session is evicted to its snapshot — rehydration on its next
    scheduled batch is the durability drill), then its submissions for the
    round.  A submission the server rejects with
    :class:`~repro.errors.BackpressureError` is retried on the next round,
    like a client honouring a 429; one rejected for an
    :class:`~repro.errors.AdmissionError` (typically a pending-claim quota
    smaller than the request) is split in half and both halves retried on
    the next round — chunks at or under the quota are admitted as the
    tenant's earlier claims drain.  After the script is exhausted the
    server runs to idle.
    """
    started = time.perf_counter()
    outcomes: list[TenantBatchOutcome] = []
    pending_events = sorted(
        workload.submissions, key=lambda event: (event.round_index, event.tenant_id)
    )
    crash_events = list(workload.crashes)
    deferred = 0
    round_index = 0
    rounds_run = 0
    while rounds_run < max_rounds:
        for crash in [c for c in crash_events if c.round_index <= round_index]:
            server.evict(crash.tenant_id)
            crash_events.remove(crash)
        still_waiting: list[SubmissionEvent] = []
        for event in pending_events:
            if event.round_index > round_index:
                still_waiting.append(event)
                continue
            try:
                server.submit(event.tenant_id, event.claim_ids)
            except BackpressureError:
                deferred += 1
                still_waiting.append(
                    SubmissionEvent(
                        round_index=round_index + 1,
                        tenant_id=event.tenant_id,
                        claim_ids=event.claim_ids,
                    )
                )
            except AdmissionError:
                # A whole-allotment burst can exceed any per-tenant quota
                # outright; retrying it unchanged would never succeed.
                # Halve it and retry both parts next round instead.
                deferred += 1
                half = max(1, len(event.claim_ids) // 2)
                for chunk in (event.claim_ids[:half], event.claim_ids[half:]):
                    if chunk:
                        still_waiting.append(
                            SubmissionEvent(
                                round_index=round_index + 1,
                                tenant_id=event.tenant_id,
                                claim_ids=chunk,
                            )
                        )
        pending_events = still_waiting
        outcomes.extend(server.run_round())
        rounds_run += 1
        round_index += 1
        if not pending_events and not crash_events and server.is_idle:
            break
    verified = {
        scenario.tenant_id: server.verified_claim_ids(scenario.tenant_id)
        for scenario in workload.scenarios
    }
    return WorkloadRunResult(
        outcomes=tuple(outcomes),
        rounds=rounds_run,
        wall_seconds=time.perf_counter() - started,
        deferred_submissions=deferred,
        verified_by_tenant=verified,
    )
