"""Multi-tenant serving over the verification runtime.

One :class:`~repro.serving.server.VerificationServer` process runs many
independent :class:`~repro.api.service.VerificationService` sessions — one
per tenant — against a shared corpus and a shared
:class:`~repro.runtime.pool.WorkerPool`:

* :mod:`repro.serving.server` — the server: a bounded session registry
  keyed by tenant id, an :class:`~repro.serving.server.AdmissionPolicy`
  (registry bound, per-tenant pending-claim quotas, bounded submission
  queue with backpressure), a work-stealing deadline-bounded scheduler
  multiplexing ``run_batch`` calls across sessions with cross-tenant
  planner fusion, and queue-pressure-driven passivation of idle sessions
  to :class:`~repro.runtime.snapshot.ServiceSnapshot` checkpoints
  (rehydrated transparently on the tenant's next request).
* :mod:`repro.serving.scheduler` — the scheduling policy itself:
  weighted-deficit fairness with a hard anti-starvation deadline,
  decoupled from server bookkeeping so it is independently testable.
* :mod:`repro.serving.workloads` — scenario-driven mixed tenant traffic:
  bursty submitters, steady streamers and resume-after-crash tenants,
  generated deterministically and drivable against any server.
* :mod:`repro.serving.cli` — ``python -m repro.serving`` with ``run`` /
  ``status`` verbs over the synthetic workload.

``benchmarks/test_bench_serving_throughput.py`` records sustained
claims/sec and p95 batch latency at 1/4/16 concurrent tenants in
``BENCH_serving_throughput.json``.

Layering contract: layer 12 of the enforced import DAG — may import
``runtime``/``simulation``, ``api`` and everything below; only
``gateway``/``experiments`` may import it. Enforced by reprolint; see
``docs/architecture.md``.
"""

from repro.serving.scheduler import RoundDecision, SchedulerConfig, TenantScheduler
from repro.serving.server import (
    AdmissionPolicy,
    ServerStats,
    ServerStatus,
    TenantBatchOutcome,
    TenantStatus,
    VerificationServer,
)
from repro.serving.workloads import (
    SCENARIO_KINDS,
    CrashEvent,
    ServingWorkload,
    SubmissionEvent,
    TenantScenario,
    WorkloadRunResult,
    build_workload,
    drive_workload,
)

__all__ = [
    "AdmissionPolicy",
    "CrashEvent",
    "RoundDecision",
    "SCENARIO_KINDS",
    "SchedulerConfig",
    "ServerStats",
    "TenantScheduler",
    "ServerStatus",
    "ServingWorkload",
    "SubmissionEvent",
    "TenantBatchOutcome",
    "TenantScenario",
    "TenantStatus",
    "VerificationServer",
    "WorkloadRunResult",
    "build_workload",
    "drive_workload",
]
