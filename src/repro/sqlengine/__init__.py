"""Engine for the statistical-check SQL fragment of Definition 3.

The fragment covers ``SELECT f(a.A1, b.A2, ...) FROM T1 a, T2 b, ... WHERE``
with a WHERE clause made of conjunctions and disjunctions of unary equality
predicates over primary-key attributes, and a SELECT clause that nests
functions from the library ``F`` over attribute values and constants.

The module provides a lexer/parser producing a small AST
(:mod:`repro.sqlengine.ast`), an executor evaluating queries over a
:class:`~repro.dataset.database.Database`, the function library
(:mod:`repro.sqlengine.functions`) and a programmatic query builder used by
the query generator.

Layering contract: layer 3 of the enforced import DAG — may import
``analysis``/``dataset``/``ml``/``text``, ``config`` and ``errors``; never
``formulas`` or anything above. Enforced by reprolint; see
``docs/architecture.md``.
"""

from repro.sqlengine.ast import (
    BinaryOp,
    ColumnRef,
    Comparison,
    FromItem,
    FunctionCall,
    KeyDisjunction,
    KeyPredicate,
    NumberLiteral,
    Query,
    StringLiteral,
    UnaryOp,
)
from repro.sqlengine.builder import QueryBuilder, QueryTemplate
from repro.sqlengine.executor import QueryExecutor, QueryResult
from repro.sqlengine.functions import FUNCTION_LIBRARY, FunctionLibrary, SQLFunction
from repro.sqlengine.parser import parse_expression, parse_query

__all__ = [
    "BinaryOp",
    "ColumnRef",
    "Comparison",
    "FUNCTION_LIBRARY",
    "FromItem",
    "FunctionCall",
    "FunctionLibrary",
    "KeyDisjunction",
    "KeyPredicate",
    "NumberLiteral",
    "Query",
    "QueryBuilder",
    "QueryExecutor",
    "QueryResult",
    "QueryTemplate",
    "SQLFunction",
    "StringLiteral",
    "UnaryOp",
    "parse_expression",
    "parse_query",
]
