"""Tokenizer for the statistical-check SQL fragment."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import SQLSyntaxError


class TokenType(Enum):
    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    COMPARISON = auto()
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()
    DOT = auto()
    END = auto()


KEYWORDS = frozenset({"SELECT", "FROM", "WHERE", "AND", "OR", "AS"})
_COMPARISON_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_ARITHMETIC_OPERATORS = ("+", "-", "*", "/")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its position in the source text."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, keyword: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == keyword.upper()


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text, raising :class:`SQLSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        character = text[index]
        if character.isspace():
            index += 1
            continue
        if character == "(":
            tokens.append(Token(TokenType.LPAREN, "(", index))
            index += 1
            continue
        if character == ")":
            tokens.append(Token(TokenType.RPAREN, ")", index))
            index += 1
            continue
        if character == ",":
            tokens.append(Token(TokenType.COMMA, ",", index))
            index += 1
            continue
        if character == "'":
            token, index = _read_string(text, index)
            tokens.append(token)
            continue
        if character == '"':
            token, index = _read_quoted_identifier(text, index)
            tokens.append(token)
            continue
        comparison = _match_comparison(text, index)
        if comparison is not None:
            tokens.append(Token(TokenType.COMPARISON, comparison, index))
            index += len(comparison)
            continue
        if character in _ARITHMETIC_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, character, index))
            index += 1
            continue
        if character.isdigit():
            token, index = _read_number(text, index)
            tokens.append(token)
            continue
        if character == ".":
            # a dot is either part of a number (handled above when preceded
            # by a digit) or the qualifier separator in ``alias.attribute``
            tokens.append(Token(TokenType.DOT, ".", index))
            index += 1
            continue
        if character.isalpha() or character == "_":
            token, index = _read_word(text, index)
            tokens.append(token)
            continue
        raise SQLSyntaxError(f"unexpected character {character!r}", position=index)
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _match_comparison(text: str, index: int) -> str | None:
    for operator in _COMPARISON_OPERATORS:
        if text.startswith(operator, index):
            return operator
    return None


def _read_string(text: str, index: int) -> tuple[Token, int]:
    start = index
    index += 1
    pieces: list[str] = []
    while index < len(text):
        character = text[index]
        if character == "'":
            if text.startswith("''", index):
                pieces.append("'")
                index += 2
                continue
            return Token(TokenType.STRING, "".join(pieces), start), index + 1
        pieces.append(character)
        index += 1
    raise SQLSyntaxError("unterminated string literal", position=start)


def _read_quoted_identifier(text: str, index: int) -> tuple[Token, int]:
    start = index
    index += 1
    pieces: list[str] = []
    while index < len(text):
        character = text[index]
        if character == '"':
            return Token(TokenType.IDENTIFIER, "".join(pieces), start), index + 1
        pieces.append(character)
        index += 1
    raise SQLSyntaxError("unterminated quoted identifier", position=start)


def _read_number(text: str, index: int) -> tuple[Token, int]:
    start = index
    seen_dot = False
    seen_exponent = False
    while index < len(text):
        character = text[index]
        if character.isdigit():
            index += 1
            continue
        if character == "." and not seen_dot and not seen_exponent:
            seen_dot = True
            index += 1
            continue
        if character in "eE" and not seen_exponent and index > start:
            lookahead = index + 1
            if lookahead < len(text) and (text[lookahead].isdigit() or text[lookahead] in "+-"):
                seen_exponent = True
                index += 2
                continue
        break
    literal = text[start:index]
    # A trailing dot ("2017." in "a.2017.") belongs to the next token.
    if literal.endswith("."):
        literal = literal[:-1]
        index -= 1
    return Token(TokenType.NUMBER, literal, start), index


def _read_word(text: str, index: int) -> tuple[Token, int]:
    start = index
    while index < len(text) and (text[index].isalnum() or text[index] == "_"):
        index += 1
    word = text[start:index]
    if word.upper() in KEYWORDS:
        return Token(TokenType.KEYWORD, word.upper(), start), index
    return Token(TokenType.IDENTIFIER, word, start), index
