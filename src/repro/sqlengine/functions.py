"""The function library ``F`` used in statistical-check queries.

The paper observes more than one hundred different combinations of operations
in the IEA checks; they are all built out of a modest set of primitive
mathematical and aggregate SQL functions, combined with arithmetic operators.
This module implements those primitives.  The library is extensible because
"we do not assume that F is fixed in general, as different combinations are
used in different domains" (Section 2).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.errors import SQLExecutionError, UnknownFunctionError

Number = float


def _flatten(arguments: Sequence[object]) -> list[float]:
    """Flatten scalar/list arguments into a list of floats, skipping None."""
    values: list[float] = []
    for argument in arguments:
        if argument is None:
            continue
        if isinstance(argument, (list, tuple)):
            values.extend(_flatten(argument))
        elif isinstance(argument, bool):
            values.append(float(argument))
        elif isinstance(argument, (int, float)):
            values.append(float(argument))
        else:
            raise SQLExecutionError(f"non-numeric value in aggregate: {argument!r}")
    return values


def _require(arguments: Sequence[object], count: int, name: str) -> list[float]:
    if len(arguments) != count:
        raise SQLExecutionError(f"{name} expects {count} arguments, got {len(arguments)}")
    values: list[float] = []
    for argument in arguments:
        if argument is None:
            raise SQLExecutionError(f"{name} received a missing value")
        if isinstance(argument, (list, tuple)):
            raise SQLExecutionError(f"{name} expects scalar arguments")
        values.append(float(argument))
    return values


@dataclass(frozen=True)
class SQLFunction:
    """A named function of the library ``F``."""

    name: str
    implementation: Callable[[Sequence[object]], float]
    arity: int | None
    aggregate: bool = False
    description: str = ""

    def __call__(self, arguments: Sequence[object]) -> float:
        if self.arity is not None and len(arguments) != self.arity:
            raise SQLExecutionError(
                f"{self.name} expects {self.arity} arguments, got {len(arguments)}"
            )
        return self.implementation(arguments)


# --------------------------------------------------------------------------- #
# primitive implementations
# --------------------------------------------------------------------------- #
def _power(arguments: Sequence[object]) -> float:
    base, exponent = _require(arguments, 2, "POWER")
    if base < 0 and not float(exponent).is_integer():
        raise SQLExecutionError("POWER of a negative base with fractional exponent")
    try:
        return math.pow(base, exponent)
    except OverflowError as error:
        raise SQLExecutionError("POWER overflow") from error


def _abs(arguments: Sequence[object]) -> float:
    (value,) = _require(arguments, 1, "ABS")
    return abs(value)


def _sqrt(arguments: Sequence[object]) -> float:
    (value,) = _require(arguments, 1, "SQRT")
    if value < 0:
        raise SQLExecutionError("SQRT of a negative value")
    return math.sqrt(value)


def _ln(arguments: Sequence[object]) -> float:
    (value,) = _require(arguments, 1, "LN")
    if value <= 0:
        raise SQLExecutionError("LN of a non-positive value")
    return math.log(value)


def _log10(arguments: Sequence[object]) -> float:
    (value,) = _require(arguments, 1, "LOG10")
    if value <= 0:
        raise SQLExecutionError("LOG10 of a non-positive value")
    return math.log10(value)


def _exp(arguments: Sequence[object]) -> float:
    (value,) = _require(arguments, 1, "EXP")
    try:
        return math.exp(value)
    except OverflowError as error:
        raise SQLExecutionError("EXP overflow") from error


def _round(arguments: Sequence[object]) -> float:
    if len(arguments) == 1:
        (value,) = _require(arguments, 1, "ROUND")
        return float(round(value))
    value, digits = _require(arguments, 2, "ROUND")
    return float(round(value, int(digits)))


def _sum(arguments: Sequence[object]) -> float:
    return float(sum(_flatten(arguments)))


def _avg(arguments: Sequence[object]) -> float:
    values = _flatten(arguments)
    if not values:
        raise SQLExecutionError("AVG of an empty set")
    return float(sum(values) / len(values))


def _min(arguments: Sequence[object]) -> float:
    values = _flatten(arguments)
    if not values:
        raise SQLExecutionError("MIN of an empty set")
    return float(min(values))


def _max(arguments: Sequence[object]) -> float:
    values = _flatten(arguments)
    if not values:
        raise SQLExecutionError("MAX of an empty set")
    return float(max(values))


def _count(arguments: Sequence[object]) -> float:
    return float(len(_flatten(arguments)))


def _ratio(arguments: Sequence[object]) -> float:
    numerator, denominator = _require(arguments, 2, "RATIO")
    if denominator == 0:
        raise SQLExecutionError("RATIO division by zero")
    return numerator / denominator


def _share(arguments: Sequence[object]) -> float:
    """SHARE(part, whole) — the fraction that ``part`` represents of ``whole``."""
    part, whole = _require(arguments, 2, "SHARE")
    if whole == 0:
        raise SQLExecutionError("SHARE of a zero total")
    return part / whole


def _diff(arguments: Sequence[object]) -> float:
    left, right = _require(arguments, 2, "DIFF")
    return left - right


def _pct_change(arguments: Sequence[object]) -> float:
    """PCT_CHANGE(new, old) — relative change from ``old`` to ``new``."""
    new, old = _require(arguments, 2, "PCT_CHANGE")
    if old == 0:
        raise SQLExecutionError("PCT_CHANGE from a zero base")
    return (new - old) / old


def _cagr(arguments: Sequence[object]) -> float:
    """CAGR(end, start, years) — compound annual growth rate.

    Matches the paper's running example
    ``POWER(a.2017 / b.2016, 1 / (2017 - 2016)) - 1``.
    """
    end, start, years = _require(arguments, 3, "CAGR")
    if start == 0:
        raise SQLExecutionError("CAGR from a zero starting value")
    if years == 0:
        raise SQLExecutionError("CAGR over a zero-length period")
    ratio = end / start
    if ratio < 0:
        raise SQLExecutionError("CAGR of a sign-changing series")
    return math.pow(ratio, 1.0 / years) - 1.0


def _fold(arguments: Sequence[object]) -> float:
    """FOLD(end, start) — the multiplicative factor ("nine-fold" in Example 2)."""
    end, start = _require(arguments, 2, "FOLD")
    if start == 0:
        raise SQLExecutionError("FOLD from a zero starting value")
    return end / start


def _greatest(arguments: Sequence[object]) -> float:
    return _max(arguments)


def _least(arguments: Sequence[object]) -> float:
    return _min(arguments)


class FunctionLibrary:
    """A registry of :class:`SQLFunction`, case-insensitive by name."""

    def __init__(self, functions: Iterable[SQLFunction] = ()) -> None:
        self._functions: dict[str, SQLFunction] = {}
        for function in functions:
            self.register(function)

    def register(self, function: SQLFunction) -> None:
        self._functions[function.name.upper()] = function

    def get(self, name: str) -> SQLFunction:
        try:
            return self._functions[name.upper()]
        except KeyError:
            raise UnknownFunctionError(name) from None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.upper() in self._functions

    def names(self) -> list[str]:
        return sorted(self._functions)

    def call(self, name: str, arguments: Sequence[object]) -> float:
        return self.get(name)(arguments)

    def copy(self) -> "FunctionLibrary":
        return FunctionLibrary(self._functions.values())


def _default_functions() -> list[SQLFunction]:
    return [
        SQLFunction("POWER", _power, 2, description="base raised to an exponent"),
        SQLFunction("ABS", _abs, 1, description="absolute value"),
        SQLFunction("SQRT", _sqrt, 1, description="square root"),
        SQLFunction("LN", _ln, 1, description="natural logarithm"),
        SQLFunction("LOG10", _log10, 1, description="base-10 logarithm"),
        SQLFunction("EXP", _exp, 1, description="exponential"),
        SQLFunction("ROUND", _round, None, description="round to n digits"),
        SQLFunction("SUM", _sum, None, aggregate=True, description="sum of values"),
        SQLFunction("AVG", _avg, None, aggregate=True, description="mean of values"),
        SQLFunction("MIN", _min, None, aggregate=True, description="minimum"),
        SQLFunction("MAX", _max, None, aggregate=True, description="maximum"),
        SQLFunction("COUNT", _count, None, aggregate=True, description="count of values"),
        SQLFunction("GREATEST", _greatest, None, description="largest argument"),
        SQLFunction("LEAST", _least, None, description="smallest argument"),
        SQLFunction("RATIO", _ratio, 2, description="numerator / denominator"),
        SQLFunction("SHARE", _share, 2, description="part / whole"),
        SQLFunction("DIFF", _diff, 2, description="left - right"),
        SQLFunction("PCT_CHANGE", _pct_change, 2, description="(new - old) / old"),
        SQLFunction("CAGR", _cagr, 3, description="compound annual growth rate"),
        SQLFunction("FOLD", _fold, 2, description="end / start multiplicative factor"),
    ]


#: The default library ``F`` shared across the system.
FUNCTION_LIBRARY = FunctionLibrary(_default_functions())
