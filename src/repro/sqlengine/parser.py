"""Recursive-descent parser for the statistical-check SQL fragment.

Grammar (informal):

.. code-block:: text

    query       := SELECT expression FROM from_list [WHERE where_clause]
    from_list   := relation alias {"," relation alias}
    where_clause:= disjunction {AND disjunction}
    disjunction := predicate | "(" predicate {OR predicate} ")"
    predicate   := qualified "=" string
    expression  := term {("+" | "-") term}
    term        := unary {("*" | "/") unary}
    unary       := ["-" | "+"] primary
    primary     := number | string | function "(" args ")" | qualified
                 | "(" expression ")"
    qualified   := identifier "." (identifier | number)

Comparisons (``expression op expression``) are accepted at the top level of
the SELECT expression because general-claim checks sometimes select a
boolean (Example 9 of the paper).
"""

from __future__ import annotations

from repro.errors import SQLSyntaxError
from repro.sqlengine.ast import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    FromItem,
    FunctionCall,
    KeyDisjunction,
    KeyPredicate,
    NumberLiteral,
    Query,
    StringLiteral,
    UnaryOp,
)
from repro.sqlengine.lexer import Token, TokenType, tokenize

_COMPARISON_OPERATORS = {"<", ">", "<=", ">=", "=", "<>", "!="}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #
    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self._current
        if token.type is not token_type or (value is not None and token.value != value):
            expected = value if value is not None else token_type.name
            raise SQLSyntaxError(
                f"expected {expected}, found {token.value!r}", position=token.position
            )
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        if self._current.matches_keyword(keyword):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # grammar
    # ------------------------------------------------------------------ #
    def parse_query(self) -> Query:
        if not self._accept_keyword("SELECT"):
            raise SQLSyntaxError("query must start with SELECT", position=self._current.position)
        select = self.parse_comparison_expression()
        if not self._accept_keyword("FROM"):
            raise SQLSyntaxError("missing FROM clause", position=self._current.position)
        from_items = self._parse_from_list()
        where: tuple[KeyDisjunction, ...] = ()
        if self._accept_keyword("WHERE"):
            where = self._parse_where()
        self._expect(TokenType.END)
        return Query(select=select, from_items=from_items, where=where)

    def parse_comparison_expression(self) -> Expression:
        left = self.parse_expression()
        token = self._current
        if token.type is TokenType.COMPARISON and token.value in _COMPARISON_OPERATORS:
            self._advance()
            right = self.parse_expression()
            return Comparison(operator=token.value, left=left, right=right)
        return left

    def parse_expression(self) -> Expression:
        node = self._parse_term()
        while self._current.type is TokenType.OPERATOR and self._current.value in "+-":
            operator = self._advance().value
            right = self._parse_term()
            node = BinaryOp(operator=operator, left=node, right=right)
        return node

    def _parse_term(self) -> Expression:
        node = self._parse_unary()
        while self._current.type is TokenType.OPERATOR and self._current.value in "*/":
            operator = self._advance().value
            right = self._parse_unary()
            node = BinaryOp(operator=operator, left=node, right=right)
        return node

    def _parse_unary(self) -> Expression:
        if self._current.type is TokenType.OPERATOR and self._current.value in "+-":
            operator = self._advance().value
            operand = self._parse_unary()
            return UnaryOp(operator=operator, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return NumberLiteral(value=float(token.value))
        if token.type is TokenType.STRING:
            self._advance()
            return StringLiteral(value=token.value)
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self.parse_comparison_expression()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type is TokenType.IDENTIFIER:
            return self._parse_identifier_expression()
        raise SQLSyntaxError(f"unexpected token {token.value!r}", position=token.position)

    def _parse_identifier_expression(self) -> Expression:
        name = self._advance().value
        if self._current.type is TokenType.LPAREN:
            self._advance()
            arguments: list[Expression] = []
            if self._current.type is not TokenType.RPAREN:
                arguments.append(self.parse_comparison_expression())
                while self._current.type is TokenType.COMMA:
                    self._advance()
                    arguments.append(self.parse_comparison_expression())
            self._expect(TokenType.RPAREN)
            return FunctionCall(name=name.upper(), arguments=tuple(arguments))
        if self._current.type is TokenType.DOT:
            self._advance()
            attribute_token = self._current
            if attribute_token.type in (TokenType.IDENTIFIER, TokenType.NUMBER):
                self._advance()
                return ColumnRef(alias=name, attribute=attribute_token.value)
            raise SQLSyntaxError(
                "expected attribute name after '.'", position=attribute_token.position
            )
        # A bare identifier is treated as a column on the only alias later;
        # in the narrow fragment we reject it to keep queries unambiguous.
        raise SQLSyntaxError(
            f"bare identifier {name!r}: column references must be qualified",
            position=self._current.position,
        )

    def _parse_from_list(self) -> tuple[FromItem, ...]:
        items: list[FromItem] = []
        while True:
            relation = self._expect(TokenType.IDENTIFIER).value
            self._accept_keyword("AS")
            alias_token = self._current
            if alias_token.type is TokenType.IDENTIFIER:
                self._advance()
                alias = alias_token.value
            else:
                alias = relation
            items.append(FromItem(relation=relation, alias=alias))
            if self._current.type is TokenType.COMMA:
                self._advance()
                continue
            break
        aliases = [item.alias for item in items]
        if len(set(aliases)) != len(aliases):
            raise SQLSyntaxError("duplicate alias in FROM clause")
        return tuple(items)

    def _parse_where(self) -> tuple[KeyDisjunction, ...]:
        clauses = [self._parse_disjunction()]
        while True:
            if self._accept_keyword("AND"):
                clauses.append(self._parse_disjunction())
                continue
            if self._current.type is TokenType.COMMA:
                # The paper renders conjunctions with commas
                # ("WHERE a.Index = 'x', b.Index = 'y'"); accept that too.
                self._advance()
                clauses.append(self._parse_disjunction())
                continue
            break
        return tuple(clauses)

    def _parse_disjunction(self) -> KeyDisjunction:
        if self._current.type is TokenType.LPAREN:
            self._advance()
            predicates = [self._parse_predicate()]
            while self._accept_keyword("OR"):
                predicates.append(self._parse_predicate())
            self._expect(TokenType.RPAREN)
            return KeyDisjunction(predicates=tuple(predicates))
        return KeyDisjunction(predicates=(self._parse_predicate(),))

    def _parse_predicate(self) -> KeyPredicate:
        alias = self._expect(TokenType.IDENTIFIER).value
        self._expect(TokenType.DOT)
        attribute_token = self._current
        if attribute_token.type not in (TokenType.IDENTIFIER, TokenType.NUMBER):
            raise SQLSyntaxError(
                "expected attribute after '.' in WHERE predicate",
                position=attribute_token.position,
            )
        self._advance()
        self._expect(TokenType.COMPARISON, "=")
        value_token = self._current
        if value_token.type is TokenType.STRING:
            self._advance()
            value = value_token.value
        elif value_token.type in (TokenType.IDENTIFIER, TokenType.NUMBER):
            self._advance()
            value = value_token.value
        else:
            raise SQLSyntaxError(
                "expected a value on the right of a key predicate",
                position=value_token.position,
            )
        return KeyPredicate(alias=alias, attribute=attribute_token.value, value=value)


def parse_query(sql: str) -> Query:
    """Parse a full statistical-check query."""
    return _Parser(tokenize(sql)).parse_query()


def parse_expression(text: str) -> Expression:
    """Parse a standalone SELECT-style expression (used for formulas)."""
    parser = _Parser(tokenize(text))
    expression = parser.parse_comparison_expression()
    parser._expect(TokenType.END)
    return expression
