"""Evaluation of statistical-check queries over a database corpus.

Execution model: the WHERE clause binds each FROM alias to one or more rows
of its relation through key-equality predicates (a disjunction yields
several admissible rows for its alias, aliases without a predicate range
over all rows).  The executor enumerates the Cartesian product of admissible
rows across aliases and evaluates the SELECT expression once per binding.
Explicit claims are then validated against the produced values; tentative
execution of many candidate queries is exactly what Algorithm 2 relies on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.dataset.database import Database
from repro.dataset.types import is_numeric
from repro.errors import SQLExecutionError, UnknownRelationError
from repro.sqlengine.ast import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    NumberLiteral,
    Query,
    StringLiteral,
    UnaryOp,
)
from repro.sqlengine.functions import FUNCTION_LIBRARY, FunctionLibrary
from repro.sqlengine.parser import parse_query

#: Safety valve on the number of alias-row bindings enumerated per query.
MAX_BINDINGS = 100_000


@dataclass(frozen=True)
class QueryResult:
    """The outcome of executing one query.

    ``values`` holds one entry per admissible alias binding; most
    statistical checks bind every alias to a single row and therefore yield
    a single value.  Bindings whose evaluation failed (missing value,
    division by zero, …) are recorded in ``errors`` rather than aborting the
    whole query, because tentative execution must tolerate bad candidates.
    """

    query: Query
    values: tuple[float, ...]
    errors: tuple[str, ...] = field(default_factory=tuple)

    @property
    def scalar(self) -> float | None:
        """The single produced value, or ``None`` if there is not exactly one."""
        if len(self.values) == 1:
            return self.values[0]
        return None

    @property
    def is_empty(self) -> bool:
        return not self.values

    def first(self) -> float | None:
        return self.values[0] if self.values else None


class QueryExecutor:
    """Evaluates :class:`~repro.sqlengine.ast.Query` objects on a corpus."""

    def __init__(
        self,
        database: Database,
        functions: FunctionLibrary | None = None,
        max_bindings: int = MAX_BINDINGS,
    ) -> None:
        self._database = database
        self._functions = functions if functions is not None else FUNCTION_LIBRARY
        self._max_bindings = max_bindings

    @property
    def database(self) -> Database:
        return self._database

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def execute(self, query: Query | str) -> QueryResult:
        """Execute a query (AST or SQL text) and collect its values."""
        if isinstance(query, str):
            query = parse_query(query)
        bindings = self._enumerate_bindings(query)
        values: list[float] = []
        errors: list[str] = []
        for binding in bindings:
            try:
                value = self._evaluate(query.select, query, binding)
            except SQLExecutionError as error:
                errors.append(str(error))
                continue
            if value is None:
                errors.append("expression evaluated to a missing value")
                continue
            values.append(float(value))
        return QueryResult(query=query, values=tuple(values), errors=tuple(errors))

    def execute_scalar(self, query: Query | str) -> float:
        """Execute a query expected to produce exactly one value."""
        result = self.execute(query)
        if len(result.values) != 1:
            raise SQLExecutionError(
                f"expected a single value, got {len(result.values)} "
                f"(errors: {list(result.errors)})"
            )
        return result.values[0]

    # ------------------------------------------------------------------ #
    # binding enumeration
    # ------------------------------------------------------------------ #
    def _enumerate_bindings(self, query: Query) -> list[dict[str, str]]:
        """All admissible alias → key-value bindings for the query."""
        alias_candidates: dict[str, list[str]] = {}
        for item in query.from_items:
            relation = self._database.get(item.relation)
            if relation is None:
                raise UnknownRelationError(item.relation)
            alias_candidates[item.alias] = list(relation.keys)
        for clause in query.where:
            alias = clause.alias
            if alias not in alias_candidates:
                raise SQLExecutionError(f"WHERE references unknown alias {alias!r}")
            relation = self._database.relation(query.alias_relation(alias))
            admissible = [value for value in clause.values if relation.has_key(value)]
            previous = alias_candidates[alias]
            alias_candidates[alias] = [key for key in previous if key in set(admissible)]
        aliases = list(alias_candidates)
        total = 1
        for candidates in alias_candidates.values():
            total *= max(len(candidates), 0)
        if total == 0:
            return []
        if total > self._max_bindings:
            raise SQLExecutionError(
                f"query enumerates {total} bindings, above the limit of {self._max_bindings}"
            )
        bindings: list[dict[str, str]] = []
        for combination in itertools.product(*(alias_candidates[alias] for alias in aliases)):
            bindings.append(dict(zip(aliases, combination)))
        return bindings

    # ------------------------------------------------------------------ #
    # expression evaluation
    # ------------------------------------------------------------------ #
    def _evaluate(
        self, expression: Expression, query: Query, binding: dict[str, str]
    ) -> float | None:
        if isinstance(expression, NumberLiteral):
            return float(expression.value)
        if isinstance(expression, StringLiteral):
            raise SQLExecutionError("string literals cannot be evaluated numerically")
        if isinstance(expression, ColumnRef):
            return self._evaluate_column(expression, query, binding)
        if isinstance(expression, UnaryOp):
            operand = self._evaluate(expression.operand, query, binding)
            if operand is None:
                return None
            return -operand if expression.operator == "-" else operand
        if isinstance(expression, BinaryOp):
            return self._evaluate_binary(expression, query, binding)
        if isinstance(expression, Comparison):
            left = self._evaluate(expression.left, query, binding)
            right = self._evaluate(expression.right, query, binding)
            if left is None or right is None:
                return None
            return float(_compare(expression.operator, left, right))
        if isinstance(expression, FunctionCall):
            arguments = [
                self._evaluate(argument, query, binding) for argument in expression.arguments
            ]
            return self._functions.call(expression.name, arguments)
        raise SQLExecutionError(f"unknown expression node {expression!r}")

    def _evaluate_column(
        self, column: ColumnRef, query: Query, binding: dict[str, str]
    ) -> float | None:
        try:
            relation_name = query.alias_relation(column.alias)
        except KeyError:
            raise SQLExecutionError(f"unknown alias {column.alias!r}") from None
        key = binding.get(column.alias)
        if key is None:
            raise SQLExecutionError(f"alias {column.alias!r} is unbound")
        relation = self._database.relation(relation_name)
        if not relation.has_attribute(column.attribute):
            raise SQLExecutionError(
                f"relation {relation_name!r} has no attribute {column.attribute!r}"
            )
        value = relation.value(key, column.attribute)
        if value is None:
            return None
        if not is_numeric(value):
            raise SQLExecutionError(
                f"cell ({key!r}, {column.attribute!r}) of {relation_name!r} is not numeric"
            )
        return float(value)

    def _evaluate_binary(
        self, expression: BinaryOp, query: Query, binding: dict[str, str]
    ) -> float | None:
        left = self._evaluate(expression.left, query, binding)
        right = self._evaluate(expression.right, query, binding)
        if left is None or right is None:
            return None
        operator = expression.operator
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            if right == 0:
                raise SQLExecutionError("division by zero")
            return left / right
        raise SQLExecutionError(f"unknown operator {operator!r}")


def _compare(operator: str, left: float, right: float) -> bool:
    if operator == "=":
        return left == right
    if operator in ("<>", "!="):
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise SQLExecutionError(f"unknown comparison operator {operator!r}")
