"""Abstract syntax tree for the statistical-check SQL fragment.

The fragment (Definition 3) is narrow by design: a single SELECT expression
combining functions from the library ``F`` over qualified column references
and constants; a FROM list of relation/alias pairs; and a WHERE clause that
is a conjunction of per-alias key-equality predicates, each possibly a
disjunction over several admissible key values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

Expression = Union[
    "NumberLiteral",
    "StringLiteral",
    "ColumnRef",
    "FunctionCall",
    "BinaryOp",
    "UnaryOp",
    "Comparison",
]


@dataclass(frozen=True)
class NumberLiteral:
    """A numeric constant appearing in the SELECT expression."""

    value: float

    def render(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(float(self.value))


@dataclass(frozen=True)
class StringLiteral:
    """A string constant (rare in SELECT, common in WHERE values)."""

    value: str

    def render(self) -> str:
        escaped = self.value.replace("'", "''")
        return f"'{escaped}'"


@dataclass(frozen=True)
class ColumnRef:
    """A qualified column reference such as ``a.2017``."""

    alias: str
    attribute: str

    def render(self) -> str:
        if _needs_quoting(self.attribute):
            return f'{self.alias}."{self.attribute}"'
        return f"{self.alias}.{self.attribute}"


@dataclass(frozen=True)
class FunctionCall:
    """A call to a function of the library ``F``."""

    name: str
    arguments: tuple[Expression, ...]

    def render(self) -> str:
        rendered = ", ".join(argument.render() for argument in self.arguments)
        return f"{self.name.upper()}({rendered})"


@dataclass(frozen=True)
class BinaryOp:
    """An arithmetic combination of two sub-expressions."""

    operator: str
    left: Expression
    right: Expression

    def render(self) -> str:
        return f"({self.left.render()} {self.operator} {self.right.render()})"


@dataclass(frozen=True)
class UnaryOp:
    """Unary minus (or plus) applied to a sub-expression."""

    operator: str
    operand: Expression

    def render(self) -> str:
        return f"({self.operator}{self.operand.render()})"


@dataclass(frozen=True)
class Comparison:
    """A comparison producing a boolean, used by general-claim checks."""

    operator: str
    left: Expression
    right: Expression

    def render(self) -> str:
        return f"({self.left.render()} {self.operator} {self.right.render()})"


@dataclass(frozen=True)
class FromItem:
    """One ``relation alias`` pair of the FROM clause."""

    relation: str
    alias: str

    def render(self) -> str:
        return f"{self.relation} {self.alias}"


@dataclass(frozen=True)
class KeyPredicate:
    """A unary equality predicate ``alias.key_attribute = 'value'``."""

    alias: str
    attribute: str
    value: str

    def render(self) -> str:
        escaped = self.value.replace("'", "''")
        if _needs_quoting(self.attribute):
            return f'{self.alias}."{self.attribute}" = \'{escaped}\''
        return f"{self.alias}.{self.attribute} = '{escaped}'"


@dataclass(frozen=True)
class KeyDisjunction:
    """A disjunction of key predicates for a single alias.

    Definition 3 allows clauses such as
    ``(b.key2 = v2 OR b.key2 = v3)``; all predicates in one disjunction must
    refer to the same alias, which the parser and builder both enforce.
    """

    predicates: tuple[KeyPredicate, ...]

    def __post_init__(self) -> None:
        if not self.predicates:
            raise ValueError("a key disjunction needs at least one predicate")
        aliases = {predicate.alias for predicate in self.predicates}
        if len(aliases) > 1:
            raise ValueError("all predicates of a disjunction must share the alias")

    @property
    def alias(self) -> str:
        return self.predicates[0].alias

    @property
    def values(self) -> tuple[str, ...]:
        return tuple(predicate.value for predicate in self.predicates)

    def render(self) -> str:
        if len(self.predicates) == 1:
            return self.predicates[0].render()
        inner = " OR ".join(predicate.render() for predicate in self.predicates)
        return f"({inner})"


@dataclass(frozen=True)
class Query:
    """A full statistical-check query."""

    select: Expression
    from_items: tuple[FromItem, ...]
    where: tuple[KeyDisjunction, ...] = field(default_factory=tuple)

    def aliases(self) -> tuple[str, ...]:
        return tuple(item.alias for item in self.from_items)

    def relation_names(self) -> tuple[str, ...]:
        return tuple(item.relation for item in self.from_items)

    def alias_relation(self, alias: str) -> str:
        for item in self.from_items:
            if item.alias == alias:
                return item.relation
        raise KeyError(alias)

    def render(self) -> str:
        """Render the query back to SQL text."""
        select_sql = f"SELECT {self.select.render()}"
        from_sql = "FROM " + ", ".join(item.render() for item in self.from_items)
        parts = [select_sql, from_sql]
        if self.where:
            where_sql = "WHERE " + " AND ".join(clause.render() for clause in self.where)
            parts.append(where_sql)
        return "\n".join(parts)

    def complexity(self) -> int:
        """Number of elements in the query, as defined for Figure 6.

        The paper counts "the number of key values, attributes, operations,
        constants and variables" making up the verifying query.
        """
        keys = sum(len(clause.predicates) for clause in self.where)
        columns, constants, operations = _expression_elements(self.select)
        return keys + columns + constants + operations

    def __str__(self) -> str:
        return self.render()


def _expression_elements(expression: Expression) -> tuple[int, int, int]:
    """Count (column references, constants, operations) in an expression."""
    if isinstance(expression, ColumnRef):
        return 1, 0, 0
    if isinstance(expression, (NumberLiteral, StringLiteral)):
        return 0, 1, 0
    if isinstance(expression, UnaryOp):
        columns, constants, operations = _expression_elements(expression.operand)
        return columns, constants, operations + 1
    if isinstance(expression, (BinaryOp, Comparison)):
        left = _expression_elements(expression.left)
        right = _expression_elements(expression.right)
        return (
            left[0] + right[0],
            left[1] + right[1],
            left[2] + right[2] + 1,
        )
    if isinstance(expression, FunctionCall):
        columns = constants = operations = 0
        for argument in expression.arguments:
            sub = _expression_elements(argument)
            columns += sub[0]
            constants += sub[1]
            operations += sub[2]
        return columns, constants, operations + 1
    raise TypeError(f"unknown expression node: {expression!r}")


def _needs_quoting(identifier: str) -> bool:
    """Attribute names that are not plain identifiers (years, spaces) need quotes."""
    if not identifier:
        return True
    if identifier[0].isdigit():
        return True
    return not all(character.isalnum() or character == "_" for character in identifier)


def walk(expression: Expression):
    """Yield every node of an expression tree, depth first."""
    yield expression
    if isinstance(expression, FunctionCall):
        for argument in expression.arguments:
            yield from walk(argument)
    elif isinstance(expression, (BinaryOp, Comparison)):
        yield from walk(expression.left)
        yield from walk(expression.right)
    elif isinstance(expression, UnaryOp):
        yield from walk(expression.operand)


def column_refs(expression: Expression) -> list[ColumnRef]:
    """All qualified column references appearing in an expression."""
    return [node for node in walk(expression) if isinstance(node, ColumnRef)]


def function_names(expression: Expression) -> list[str]:
    """All function names appearing in an expression, outermost first."""
    return [node.name.upper() for node in walk(expression) if isinstance(node, FunctionCall)]
