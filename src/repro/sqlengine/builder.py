"""Programmatic construction of statistical-check queries.

Algorithm 2 of the paper rewrites variable assignments into SQL by filling a
query template — "an SQL string with placeholders, as described in
Definition 3".  :class:`QueryBuilder` offers a fluent way to assemble the
same queries as AST objects, and :class:`QueryTemplate` captures the
placeholder-filling step used during query generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SQLError
from repro.sqlengine.ast import (
    Expression,
    FromItem,
    KeyDisjunction,
    KeyPredicate,
    Query,
)
from repro.sqlengine.parser import parse_expression


class QueryBuilder:
    """Fluent builder for :class:`~repro.sqlengine.ast.Query` objects."""

    def __init__(self, key_attribute: str = "Index") -> None:
        self._key_attribute = key_attribute
        self._select: Expression | None = None
        self._from_items: list[FromItem] = []
        self._where: list[KeyDisjunction] = []

    def select(self, expression: Expression | str) -> "QueryBuilder":
        """Set the SELECT expression (AST node or SQL expression text)."""
        if isinstance(expression, str):
            expression = parse_expression(expression)
        self._select = expression
        return self

    def from_relation(self, relation: str, alias: str | None = None) -> "QueryBuilder":
        """Add a relation/alias pair to the FROM clause."""
        alias = alias if alias is not None else relation
        if any(item.alias == alias for item in self._from_items):
            raise SQLError(f"duplicate alias {alias!r} in FROM clause")
        self._from_items.append(FromItem(relation=relation, alias=alias))
        return self

    def where_key(self, alias: str, *values: str, attribute: str | None = None) -> "QueryBuilder":
        """Constrain ``alias`` to one or more admissible key values."""
        if not values:
            raise SQLError("where_key needs at least one admissible value")
        attribute = attribute if attribute is not None else self._key_attribute
        predicates = tuple(
            KeyPredicate(alias=alias, attribute=attribute, value=str(value)) for value in values
        )
        self._where.append(KeyDisjunction(predicates=predicates))
        return self

    def build(self) -> Query:
        if self._select is None:
            raise SQLError("the SELECT expression has not been set")
        if not self._from_items:
            raise SQLError("the FROM clause is empty")
        known_aliases = {item.alias for item in self._from_items}
        for clause in self._where:
            if clause.alias not in known_aliases:
                raise SQLError(f"WHERE references unknown alias {clause.alias!r}")
        return Query(
            select=self._select,
            from_items=tuple(self._from_items),
            where=tuple(self._where),
        )


@dataclass(frozen=True)
class QueryTemplate:
    """An SQL string with named placeholders, filled during query generation.

    Placeholders are written ``{name}``; :meth:`fill` substitutes them with
    concrete relation names, key values and attribute labels.  The template
    form matches the paper's description of the rewriting step of
    Algorithm 2 (lines 24 and 27).
    """

    text: str

    def placeholder_names(self) -> list[str]:
        names: list[str] = []
        index = 0
        while index < len(self.text):
            start = self.text.find("{", index)
            if start == -1:
                break
            end = self.text.find("}", start)
            if end == -1:
                raise SQLError(f"unbalanced placeholder braces in template: {self.text!r}")
            name = self.text[start + 1 : end]
            if not name:
                raise SQLError("empty placeholder name in template")
            if name not in names:
                names.append(name)
            index = end + 1
        return names

    def fill(self, **values: str) -> str:
        """Substitute every placeholder; missing or extra names are errors."""
        required = set(self.placeholder_names())
        provided = set(values)
        missing = required - provided
        if missing:
            raise SQLError(f"missing placeholder values: {sorted(missing)}")
        extra = provided - required
        if extra:
            raise SQLError(f"unknown placeholder values: {sorted(extra)}")
        filled = self.text
        for name, value in values.items():
            filled = filled.replace("{" + name + "}", str(value))
        return filled


def lookup_query(
    relation: str,
    key: str,
    attribute: str,
    key_attribute: str = "Index",
    alias: str = "a",
) -> Query:
    """Convenience constructor for a plain look-up query."""
    builder = QueryBuilder(key_attribute=key_attribute)
    select = f'{alias}."{attribute}"' if attribute[0].isdigit() else f"{alias}.{attribute}"
    return (
        builder.select(select)
        .from_relation(relation, alias)
        .where_key(alias, key)
        .build()
    )
