"""Aggregation of checker verdicts by majority voting.

In the user study "with a simple majority voting across any subset of three
checkers, our system obtains 100% accuracy as in the manual process"; the
simulator aggregates the same way.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

from repro.errors import CrowdError


def majority_vote(verdicts: Sequence[bool]) -> bool:
    """Majority verdict; ties resolve to ``True`` (claim considered correct)."""
    if not verdicts:
        raise CrowdError("cannot vote over an empty set of verdicts")
    positive = sum(1 for verdict in verdicts if verdict)
    return positive * 2 >= len(verdicts)


def vote_counts(verdicts: Sequence[bool]) -> dict[bool, int]:
    """Counts of positive and negative verdicts."""
    counter = Counter(bool(verdict) for verdict in verdicts)
    return {True: counter.get(True, 0), False: counter.get(False, 0)}


def unanimous(verdicts: Sequence[bool]) -> bool:
    """Whether all checkers agree (the ``Unanimous`` filter of Algorithm 1)."""
    if not verdicts:
        return False
    return all(verdicts) or not any(verdicts)
