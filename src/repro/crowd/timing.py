"""Verification-time model calibrated on the paper's user study.

Figure 6 of the paper shows manual verification time growing roughly
linearly with claim complexity (about 50 s at complexity 4 up to about
200 s at complexity 10), while the system-assisted process takes less than
half of that at every complexity level.  The timing model reproduces those
shapes: manual checks pay a per-element cost, system-assisted checks pay
per screen interaction (reading displayed options, occasionally suggesting
answers) plus a small per-element reading cost for the final query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CostModelConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimingModelConfig:
    """Constants of the simulated timing model (all in seconds)."""

    #: Fixed overhead of any manual check (finding the right spreadsheet).
    manual_base: float = 20.0
    #: Additional manual cost per element of the verifying query.
    manual_per_element: float = 18.0
    #: Fixed overhead of a system-assisted check (reading the claim/screen).
    system_base: float = 8.0
    #: Additional system cost per element of the verifying query.
    system_per_element: float = 2.0
    #: Multiplicative noise (lognormal sigma) applied to sampled times.
    noise_sigma: float = 0.15

    def __post_init__(self) -> None:
        values = (
            self.manual_base,
            self.manual_per_element,
            self.system_base,
            self.system_per_element,
        )
        if any(value < 0 for value in values):
            raise ConfigurationError("timing constants must be non-negative")
        if self.noise_sigma < 0:
            raise ConfigurationError("noise_sigma must be non-negative")


class TimingModel:
    """Samples verification times for manual and system-assisted checks."""

    def __init__(
        self,
        config: TimingModelConfig | None = None,
        cost_model: CostModelConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else TimingModelConfig()
        self.cost_model = cost_model if cost_model is not None else CostModelConfig()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # deterministic expectations
    # ------------------------------------------------------------------ #
    def expected_manual_time(self, complexity: int) -> float:
        """Average manual verification time for a claim of given complexity."""
        return self.config.manual_base + self.config.manual_per_element * max(0, complexity)

    def expected_system_time(
        self,
        complexity: int,
        options_read: int,
        suggestions_made: int,
        final_options_read: int = 1,
        final_suggested: bool = False,
    ) -> float:
        """Average system-assisted time given the screen interactions.

        ``options_read`` counts property options read across all screens,
        ``suggestions_made`` the screens where no displayed option was
        correct, ``final_options_read`` the candidate queries read on the
        final screen and ``final_suggested`` whether the checker had to work
        out the query by hand despite the tool.
        """
        time = self.config.system_base
        time += self.config.system_per_element * max(0, complexity)
        time += self.cost_model.property_verify_cost * max(0, options_read)
        time += self.cost_model.property_suggest_cost * max(0, suggestions_made)
        time += self.cost_model.query_verify_cost * max(0, final_options_read)
        if final_suggested:
            time += self.cost_model.query_suggest_cost
        return time

    # ------------------------------------------------------------------ #
    # checkpoint state
    # ------------------------------------------------------------------ #
    def get_rng_state(self) -> dict:
        """The generator state (JSON-compatible), for checkpointing."""
        return self._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a generator state captured by :meth:`get_rng_state`."""
        self._rng.bit_generator.state = state

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _noisy(self, expected: float) -> float:
        if self.config.noise_sigma == 0:
            return expected
        factor = float(self._rng.lognormal(mean=0.0, sigma=self.config.noise_sigma))
        return expected * factor

    def sample_manual_time(self, complexity: int) -> float:
        return self._noisy(self.expected_manual_time(complexity))

    def sample_system_time(
        self,
        complexity: int,
        options_read: int,
        suggestions_made: int,
        final_options_read: int = 1,
        final_suggested: bool = False,
    ) -> float:
        return self._noisy(
            self.expected_system_time(
                complexity,
                options_read,
                suggestions_made,
                final_options_read,
                final_suggested,
            )
        )
