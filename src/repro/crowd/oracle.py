"""Ground-truth oracle answering planner questions.

The oracle plays the role of a perfectly informed domain expert: it answers
property screens with the claim's ground-truth labels and judges final
screens by comparing candidate query values against the reference value.
Simulated checkers wrap the oracle with human behaviour (reading time,
skipping, occasional mistakes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.claims.corpus import ClaimCorpus
from repro.claims.model import ClaimProperty
from repro.dataset.types import values_close
from repro.planning.screens import QueryOption, Screen


@dataclass(frozen=True)
class ScreenAnswer:
    """The oracle's answer to one property screen."""

    claim_property: ClaimProperty
    selected_labels: tuple[str, ...]
    #: Position (0-based) of the first correct option that was displayed,
    #: ``None`` when the checker had to suggest the answer instead.
    selected_position: int | None
    suggested: bool

    @property
    def displayed_hit(self) -> bool:
        return self.selected_position is not None


@dataclass(frozen=True)
class FinalAnswer:
    """The oracle's judgement of the final (full query) screen."""

    verdict: bool
    chosen_sql: str | None
    chosen_position: int | None
    suggested_value: float | None
    suggested: bool


class GroundTruthOracle:
    """Answers questions from the corpus ground truth."""

    def __init__(self, corpus: ClaimCorpus, value_tolerance: float = 0.05) -> None:
        self._corpus = corpus
        self._tolerance = value_tolerance

    @property
    def corpus(self) -> ClaimCorpus:
        return self._corpus

    # ------------------------------------------------------------------ #
    # property screens
    # ------------------------------------------------------------------ #
    def correct_labels(self, claim_id: str, claim_property: ClaimProperty) -> tuple[str, ...]:
        return self._corpus.ground_truth(claim_id).property_labels(claim_property)

    def answer_screen(self, claim_id: str, screen: Screen) -> ScreenAnswer:
        """Pick the correct displayed options, or suggest the right answer."""
        truth = set(self.correct_labels(claim_id, screen.claim_property))
        selected_position: int | None = None
        selected: list[str] = []
        for position, option in enumerate(screen.options):
            if option.label in truth:
                if selected_position is None:
                    selected_position = position
                selected.append(option.label)
        if selected:
            return ScreenAnswer(
                claim_property=screen.claim_property,
                selected_labels=tuple(selected),
                selected_position=selected_position,
                suggested=False,
            )
        return ScreenAnswer(
            claim_property=screen.claim_property,
            selected_labels=tuple(self.correct_labels(claim_id, screen.claim_property)),
            selected_position=None,
            suggested=True,
        )

    # ------------------------------------------------------------------ #
    # final screen
    # ------------------------------------------------------------------ #
    def answer_final(
        self, claim_id: str, query_options: tuple[QueryOption, ...] | list[QueryOption]
    ) -> FinalAnswer:
        """Judge the claim from the displayed candidate queries.

        The checker accepts the first candidate whose value matches the
        reference value of the claim's ground-truth query; the claim's
        verdict is then the ground truth's correctness flag.  When no
        candidate matches, the checker suggests the reference value (which
        still allows a verdict, at a higher cost).
        """
        truth = self._corpus.ground_truth(claim_id)
        reference = truth.expected_value
        chosen_position: int | None = None
        chosen_sql: str | None = None
        if reference is not None:
            for position, option in enumerate(query_options):
                if option.value is None:
                    continue
                if values_close(option.value, reference, self._tolerance):
                    chosen_position = position
                    chosen_sql = option.sql
                    break
        suggested = chosen_position is None
        return FinalAnswer(
            verdict=truth.is_correct,
            chosen_sql=chosen_sql if chosen_sql is not None else truth.sql or None,
            chosen_position=chosen_position,
            suggested_value=reference if suggested else None,
            suggested=suggested,
        )

    # ------------------------------------------------------------------ #
    # direct ground-truth access used by the simulators
    # ------------------------------------------------------------------ #
    def is_claim_correct(self, claim_id: str) -> bool:
        return self._corpus.ground_truth(claim_id).is_correct

    def reference_value(self, claim_id: str) -> float | None:
        return self._corpus.ground_truth(claim_id).expected_value

    def reference_sql(self, claim_id: str) -> str | None:
        return self._corpus.ground_truth(claim_id).sql or None

    def claim_complexity(self, claim_id: str) -> int:
        return self._corpus.ground_truth(claim_id).complexity
