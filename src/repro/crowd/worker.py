"""Simulated fact checkers.

A :class:`SimulatedChecker` wraps the ground-truth oracle with human
behaviour: reading time for displayed options, suggestion time when the
right answer is missing, occasional mistakes on correct claims (the user
study observed a few correct claims labelled as incorrect) and skipping of
claims the checker does not feel confident about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.claims.model import Claim, ClaimProperty
from repro.crowd.timing import TimingModel
from repro.errors import ConfigurationError
from repro.planning.screens import QuestionPlan

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle at runtime)
    from repro.api.protocols import AnswerSource


@dataclass(frozen=True)
class CheckerResponse:
    """One checker's processing of one claim."""

    claim_id: str
    checker_id: str
    verdict: bool | None
    elapsed_seconds: float
    skipped: bool = False
    used_system: bool = True
    validated_context: dict[ClaimProperty, tuple[str, ...]] = field(default_factory=dict)
    chosen_sql: str | None = None
    suggested_value: float | None = None

    @property
    def decided(self) -> bool:
        return not self.skipped and self.verdict is not None


class SimulatedChecker:
    """A simulated domain expert answering planner questions.

    ``oracle`` may be any :class:`~repro.api.protocols.AnswerSource`; the
    ground-truth oracle is the stock choice, but the checker only relies on
    the protocol methods, so simulated experts can also be pointed at a
    recorded answer log or a different corpus adapter.
    """

    def __init__(
        self,
        checker_id: str,
        oracle: "AnswerSource",
        timing: TimingModel | None = None,
        error_rate: float = 0.03,
        skip_rate: float = 0.05,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= error_rate < 1.0:
            raise ConfigurationError("error_rate must be in [0, 1)")
        if not 0.0 <= skip_rate < 1.0:
            raise ConfigurationError("skip_rate must be in [0, 1)")
        self.checker_id = checker_id
        self._oracle = oracle
        self._timing = timing if timing is not None else TimingModel(seed=seed)
        self.error_rate = error_rate
        self.skip_rate = skip_rate
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # system-assisted verification
    # ------------------------------------------------------------------ #
    def verify_with_plan(self, claim: Claim, plan: QuestionPlan) -> CheckerResponse:
        """Work through the question plan for one claim."""
        claim_id = claim.claim_id
        if self._rng.random() < self.skip_rate:
            return CheckerResponse(
                claim_id=claim_id,
                checker_id=self.checker_id,
                verdict=None,
                elapsed_seconds=self._timing.cost_model.property_verify_cost,
                skipped=True,
            )
        options_read = 0
        suggestions_made = 0
        validated_context: dict[ClaimProperty, tuple[str, ...]] = {}
        for screen in plan.screens:
            answer = self._oracle.answer_screen(claim_id, screen)
            if answer.displayed_hit:
                # The checker reads options top to bottom until the correct one.
                options_read += (answer.selected_position or 0) + 1
            else:
                options_read += screen.option_count
                suggestions_made += 1
            validated_context[screen.claim_property] = answer.selected_labels
        final = self._oracle.answer_final(claim_id, plan.query_options)
        final_options_read = (
            (final.chosen_position + 1)
            if final.chosen_position is not None
            else len(plan.query_options)
        )
        elapsed = self._timing.sample_system_time(
            complexity=self._oracle.claim_complexity(claim_id),
            options_read=options_read,
            suggestions_made=suggestions_made,
            final_options_read=max(1, final_options_read),
            final_suggested=final.suggested,
        )
        verdict = self._apply_error(final.verdict)
        return CheckerResponse(
            claim_id=claim_id,
            checker_id=self.checker_id,
            verdict=verdict,
            elapsed_seconds=elapsed,
            skipped=False,
            used_system=True,
            validated_context=validated_context,
            chosen_sql=final.chosen_sql,
            suggested_value=final.suggested_value,
        )

    # ------------------------------------------------------------------ #
    # manual verification
    # ------------------------------------------------------------------ #
    def verify_manually(self, claim: Claim) -> CheckerResponse:
        """Verify a claim the traditional way (spreadsheets and databases)."""
        claim_id = claim.claim_id
        if self._rng.random() < self.skip_rate:
            return CheckerResponse(
                claim_id=claim_id,
                checker_id=self.checker_id,
                verdict=None,
                elapsed_seconds=self._timing.config.system_base,
                skipped=True,
                used_system=False,
            )
        complexity = self._oracle.claim_complexity(claim_id)
        elapsed = self._timing.sample_manual_time(complexity)
        truth = self._oracle.is_claim_correct(claim_id)
        return CheckerResponse(
            claim_id=claim_id,
            checker_id=self.checker_id,
            verdict=self._apply_error(truth),
            elapsed_seconds=elapsed,
            skipped=False,
            used_system=False,
            chosen_sql=self._oracle.reference_sql(claim_id),
        )

    # ------------------------------------------------------------------ #
    # checkpoint state
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict[str, object]:
        """JSON-compatible behavioural state of this checker.

        Captures the skip/error RNG so a restored run draws the same
        decisions.  The timing model is *not* included: in the stock setup
        it is owned (and checkpointed) by the verification service, which
        shares one instance across all checkers.
        """
        return {
            "checker_id": self.checker_id,
            "error_rate": self.error_rate,
            "skip_rate": self.skip_rate,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore_state(self, state: dict[str, object]) -> None:
        """Apply a state captured by :meth:`to_state` to this checker."""
        self.error_rate = float(state["error_rate"])  # type: ignore[arg-type]
        self.skip_rate = float(state["skip_rate"])  # type: ignore[arg-type]
        self._rng.bit_generator.state = state["rng_state"]

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _apply_error(self, truth: bool) -> bool:
        """Occasionally flag a correct claim as incorrect (never the opposite).

        This mirrors the user study, where the few mistakes were "all
        correct claims labelled as incorrect".
        """
        if truth and self._rng.random() < self.error_rate:
            return False
        return truth
