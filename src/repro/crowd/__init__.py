"""Simulated crowd of domain experts.

The paper's crowd is a team of professional IEA fact checkers; Section 6.2
of the paper itself replaces them with a simulator calibrated on the user
study.  We do the same: a ground-truth oracle answers question screens, a
timing model converts screen interactions and manual checks into seconds,
and simulated checkers add skip/error behaviour plus majority voting.
"""

from repro.crowd.oracle import GroundTruthOracle, ScreenAnswer
from repro.crowd.timing import TimingModel, TimingModelConfig
from repro.crowd.voting import majority_vote
from repro.crowd.worker import CheckerResponse, SimulatedChecker

__all__ = [
    "CheckerResponse",
    "GroundTruthOracle",
    "ScreenAnswer",
    "SimulatedChecker",
    "TimingModel",
    "TimingModelConfig",
    "majority_vote",
]
