"""Simulated crowd of domain experts.

The paper's crowd is a team of professional IEA fact checkers; Section 6.2
of the paper itself replaces them with a simulator calibrated on the user
study.  We do the same: a ground-truth oracle answers question screens, a
timing model converts screen interactions and manual checks into seconds,
and simulated checkers add skip/error behaviour plus majority voting.

Layering contract: layer 8 of the enforced import DAG — may import
``pipeline``/``planning``, ``store``/``translation``, ``claims`` and
everything below; never ``core``/``synth``, ``api`` or anything above.
Enforced by reprolint; see ``docs/architecture.md``.
"""

from repro.crowd.oracle import GroundTruthOracle, ScreenAnswer
from repro.crowd.timing import TimingModel, TimingModelConfig
from repro.crowd.voting import majority_vote
from repro.crowd.worker import CheckerResponse, SimulatedChecker

__all__ = [
    "CheckerResponse",
    "GroundTruthOracle",
    "ScreenAnswer",
    "SimulatedChecker",
    "TimingModel",
    "TimingModelConfig",
    "majority_vote",
]
