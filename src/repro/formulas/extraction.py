"""Generalising past checks into reusable formulas (Section 4.2).

Checker annotations describe how a claim was verified as a tree of
operations over data values: leaves are *look-ups* (a relation, a key, an
attribute) or constants, inner nodes apply arithmetic operators or functions
of the library ``F``.  The extractor performs the "reconstruction" step of
the paper: it recursively replaces every value by its producing operation
until look-ups are reached, replaces look-ups by value variables, and
replaces attribute labels appearing as constants by attribute variables —
yielding a formula that can be reused on unseen claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.errors import FormulaError
from repro.formulas.ast import (
    AttributeVariable,
    Constant,
    Formula,
    FormulaBinaryOp,
    FormulaComparison,
    FormulaFunction,
    FormulaNode,
    FormulaUnaryOp,
    ValueVariable,
)
from repro.formulas.instantiate import ValueRef
from repro.formulas.variables import attribute_variable_name, value_variable_name

#: Arithmetic operators allowed in annotation traces.
_ARITHMETIC = {"+", "-", "*", "/"}
_COMPARISONS = {"<", ">", "<=", ">=", "=", "<>", "!="}


@dataclass(frozen=True)
class LookupStep:
    """A leaf of a check trace: read one cell of a relation."""

    relation: str
    key: str
    attribute: str

    def as_ref(self) -> ValueRef:
        return ValueRef(relation=self.relation, key=self.key, attribute=self.attribute)


@dataclass(frozen=True)
class ConstantStep:
    """A literal constant used by the check (tolerances, unit factors, ...)."""

    value: float


@dataclass(frozen=True)
class OperationStep:
    """An inner node: an operator or library function applied to operands."""

    operation: str
    operands: tuple["CheckStep", ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise FormulaError(f"operation {self.operation!r} has no operands")


CheckStep = Union[LookupStep, ConstantStep, OperationStep]


@dataclass(frozen=True)
class GeneralizedCheck:
    """The outcome of generalising one check trace.

    ``formula`` is the reusable template; ``value_assignment`` and
    ``attribute_assignment`` record the binding that reproduces the original
    check, so the pair (formula, assignments) regenerates the ground-truth
    SQL query for the annotated claim.
    """

    formula: Formula
    value_assignment: dict[str, ValueRef] = field(default_factory=dict)
    attribute_assignment: dict[str, str] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """The formula's canonical string, i.e. the classifier class label."""
        return self.formula.render()

    @property
    def relations(self) -> tuple[str, ...]:
        seen: list[str] = []
        for reference in self.value_assignment.values():
            if reference.relation not in seen:
                seen.append(reference.relation)
        return tuple(seen)

    @property
    def keys(self) -> tuple[str, ...]:
        seen: list[str] = []
        for reference in self.value_assignment.values():
            if reference.key not in seen:
                seen.append(reference.key)
        return tuple(seen)

    @property
    def attributes(self) -> tuple[str, ...]:
        seen: list[str] = []
        for reference in self.value_assignment.values():
            if reference.attribute not in seen:
                seen.append(reference.attribute)
        return tuple(seen)


class FormulaExtractor:
    """Turns annotation traces into generalized formulas."""

    def __init__(self, generalize_attribute_constants: bool = True) -> None:
        #: Whether constants equal to an attribute label used by the check
        #: (e.g. the years in ``1/(2017-2016)``) become attribute variables.
        self.generalize_attribute_constants = generalize_attribute_constants

    def generalize(self, trace: CheckStep) -> GeneralizedCheck:
        """Generalise one check trace into a formula plus its original binding."""
        state = _ExtractionState()
        root = self._convert(trace, state)
        if self.generalize_attribute_constants and state.attribute_by_label:
            root = self._replace_attribute_constants(root, state)
        return GeneralizedCheck(
            formula=Formula(root=root),
            value_assignment=dict(state.value_assignment),
            attribute_assignment=dict(state.attribute_assignment),
        )

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #
    def _convert(self, step: CheckStep, state: "_ExtractionState") -> FormulaNode:
        if isinstance(step, LookupStep):
            return ValueVariable(name=state.variable_for_lookup(step))
        if isinstance(step, ConstantStep):
            return Constant(value=float(step.value))
        if isinstance(step, OperationStep):
            operands = tuple(self._convert(operand, state) for operand in step.operands)
            operation = step.operation
            if operation in _ARITHMETIC:
                return self._fold_arithmetic(operation, operands)
            if operation in _COMPARISONS:
                if len(operands) != 2:
                    raise FormulaError(
                        f"comparison {operation!r} needs exactly two operands"
                    )
                return FormulaComparison(operator=operation, left=operands[0], right=operands[1])
            if operation == "neg":
                if len(operands) != 1:
                    raise FormulaError("negation needs exactly one operand")
                return FormulaUnaryOp(operator="-", operand=operands[0])
            return FormulaFunction(name=operation.upper(), arguments=operands)
        raise FormulaError(f"unknown check step {step!r}")

    @staticmethod
    def _fold_arithmetic(operation: str, operands: tuple[FormulaNode, ...]) -> FormulaNode:
        if len(operands) < 2:
            raise FormulaError(f"operator {operation!r} needs at least two operands")
        node = operands[0]
        for operand in operands[1:]:
            node = FormulaBinaryOp(operator=operation, left=node, right=operand)
        return node

    def _replace_attribute_constants(
        self, node: FormulaNode, state: "_ExtractionState"
    ) -> FormulaNode:
        """Replace constants equal to a referenced attribute label by its variable."""
        if isinstance(node, Constant):
            label = _numeric_label(node.value)
            variable = state.attribute_by_label.get(label)
            if variable is not None:
                return AttributeVariable(name=variable)
            return node
        if isinstance(node, FormulaUnaryOp):
            return FormulaUnaryOp(
                operator=node.operator,
                operand=self._replace_attribute_constants(node.operand, state),
            )
        if isinstance(node, FormulaBinaryOp):
            return FormulaBinaryOp(
                operator=node.operator,
                left=self._replace_attribute_constants(node.left, state),
                right=self._replace_attribute_constants(node.right, state),
            )
        if isinstance(node, FormulaComparison):
            return FormulaComparison(
                operator=node.operator,
                left=self._replace_attribute_constants(node.left, state),
                right=self._replace_attribute_constants(node.right, state),
            )
        if isinstance(node, FormulaFunction):
            return FormulaFunction(
                name=node.name,
                arguments=tuple(
                    self._replace_attribute_constants(argument, state)
                    for argument in node.arguments
                ),
            )
        return node


class _ExtractionState:
    """Bookkeeping of variable allocation during one generalisation."""

    def __init__(self) -> None:
        self.value_assignment: dict[str, ValueRef] = {}
        self.attribute_assignment: dict[str, str] = {}
        self.attribute_by_label: dict[str, str] = {}
        self._lookup_to_variable: dict[tuple[str, str, str], str] = {}

    def variable_for_lookup(self, step: LookupStep) -> str:
        identity = (step.relation, step.key, step.attribute)
        existing = self._lookup_to_variable.get(identity)
        if existing is not None:
            return existing
        name = value_variable_name(len(self._lookup_to_variable))
        self._lookup_to_variable[identity] = name
        self.value_assignment[name] = step.as_ref()
        self._register_attribute(step.attribute)
        return name

    def _register_attribute(self, label: str) -> None:
        if label in self.attribute_by_label:
            return
        variable = attribute_variable_name(len(self.attribute_by_label))
        self.attribute_by_label[label] = variable
        self.attribute_assignment[variable] = label


def _numeric_label(value: float) -> str:
    """Render a numeric constant the way attribute labels are written."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# --------------------------------------------------------------------------- #
# convenience constructors for building traces in code and tests
# --------------------------------------------------------------------------- #
def lookup(relation: str, key: str, attribute: str) -> LookupStep:
    return LookupStep(relation=relation, key=key, attribute=attribute)


def const(value: float) -> ConstantStep:
    return ConstantStep(value=float(value))


def op(operation: str, *operands: CheckStep) -> OperationStep:
    return OperationStep(operation=operation, operands=tuple(operands))


def cagr_trace(relation: str, key: str, end_year: str, start_year: str) -> OperationStep:
    """The compound-annual-growth-rate check of Example 1, as a trace."""
    return op(
        "-",
        op(
            "POWER",
            op("/", lookup(relation, key, end_year), lookup(relation, key, start_year)),
            op("/", const(1), op("-", const(float(end_year)), const(float(start_year)))),
        ),
        const(1),
    )
