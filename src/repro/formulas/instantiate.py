"""Instantiation of formulas over concrete data (Algorithm 2's inner loop).

Given a formula and an assignment of its value variables to data cells
(``ValueRef`` triples) and of its attribute variables to attribute labels,
the instantiator can

* evaluate the formula numerically (fast path used to test ``f(i) ≈ p``
  against an explicit claim's parameter), and
* rewrite the assignment into a statistical-check SQL query over the
  database (the interpretable artefact shown to fact checkers, Figure 3).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.dataset.database import Database
from repro.dataset.types import is_numeric
from repro.errors import FormulaBindingError, FormulaError, SQLExecutionError
from repro.formulas.ast import (
    AttributeVariable,
    Constant,
    Formula,
    FormulaBinaryOp,
    FormulaComparison,
    FormulaFunction,
    FormulaNode,
    FormulaUnaryOp,
    ValueVariable,
)
from repro.formulas.variables import VariableBinding
from repro.sqlengine.ast import (
    BinaryOp,
    ColumnRef,
    Comparison,
    Expression,
    FromItem,
    FunctionCall,
    KeyDisjunction,
    KeyPredicate,
    NumberLiteral,
    Query,
    UnaryOp,
)
from repro.sqlengine.functions import FUNCTION_LIBRARY, FunctionLibrary


@dataclass(frozen=True)
class ValueRef:
    """A reference to one data cell: relation, primary-key value, attribute."""

    relation: str
    key: str
    attribute: str

    def render(self) -> str:
        return f"{self.relation}[{self.key}, {self.attribute}]"


@dataclass(frozen=True)
class InstantiatedQuery:
    """The result of instantiating a formula over one variable assignment."""

    formula: Formula
    value_assignment: dict[str, ValueRef]
    attribute_assignment: dict[str, str]
    query: Query
    value: float | None
    is_boolean: bool

    @property
    def sql(self) -> str:
        return self.query.render()


def _comparison_holds(operator: str, left: float, right: float) -> bool:
    if operator == "=":
        return left == right
    if operator in ("<>", "!="):
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise FormulaError(f"unknown comparison operator {operator!r}")


class FormulaInstantiator:
    """Instantiates formulas over a database corpus."""

    def __init__(
        self,
        database: Database,
        functions: FunctionLibrary | None = None,
        key_attribute: str = "Index",
    ) -> None:
        self._database = database
        self._functions = functions if functions is not None else FUNCTION_LIBRARY
        self._key_attribute = key_attribute

    # ------------------------------------------------------------------ #
    # numeric evaluation
    # ------------------------------------------------------------------ #
    def evaluate_binding(self, formula: Formula, binding: VariableBinding) -> float:
        """Evaluate a formula over an already-resolved numeric binding."""
        return self._evaluate_node(formula.root, binding)

    def resolve_binding(
        self,
        value_assignment: Mapping[str, ValueRef],
        attribute_assignment: Mapping[str, str],
    ) -> VariableBinding:
        """Look up every :class:`ValueRef` in the database."""
        values: dict[str, float] = {}
        for variable, reference in value_assignment.items():
            value = self._database.try_lookup(
                reference.relation, reference.key, reference.attribute
            )
            if value is None or not is_numeric(value):
                raise FormulaBindingError(
                    f"cell {reference.render()} is missing or non-numeric"
                )
            values[variable] = float(value)
        return VariableBinding(values=values, attributes=dict(attribute_assignment))

    def evaluate(
        self,
        formula: Formula,
        value_assignment: Mapping[str, ValueRef],
        attribute_assignment: Mapping[str, str] | None = None,
    ) -> float:
        """Resolve the assignment against the database and evaluate."""
        binding = self.resolve_binding(value_assignment, attribute_assignment or {})
        return self.evaluate_binding(formula, binding)

    def _evaluate_node(self, node: FormulaNode, binding: VariableBinding) -> float:
        if isinstance(node, Constant):
            return float(node.value)
        if isinstance(node, ValueVariable):
            return binding.value(node.name)
        if isinstance(node, AttributeVariable):
            return binding.attribute_numeric(node.name)
        if isinstance(node, FormulaUnaryOp):
            operand = self._evaluate_node(node.operand, binding)
            return -operand if node.operator == "-" else operand
        if isinstance(node, FormulaBinaryOp):
            left = self._evaluate_node(node.left, binding)
            right = self._evaluate_node(node.right, binding)
            return self._apply_operator(node.operator, left, right)
        if isinstance(node, FormulaComparison):
            left = self._evaluate_node(node.left, binding)
            right = self._evaluate_node(node.right, binding)
            return float(_comparison_holds(node.operator, left, right))
        if isinstance(node, FormulaFunction):
            arguments = [self._evaluate_node(argument, binding) for argument in node.arguments]
            try:
                return self._functions.call(node.name, arguments)
            except SQLExecutionError as error:
                raise FormulaError(str(error)) from error
        raise FormulaError(f"unknown formula node {node!r}")

    @staticmethod
    def _apply_operator(operator: str, left: float, right: float) -> float:
        if operator == "+":
            return left + right
        if operator == "-":
            return left - right
        if operator == "*":
            return left * right
        if operator == "/":
            if right == 0:
                raise FormulaError("division by zero while evaluating a formula")
            return left / right
        raise FormulaError(f"unknown operator {operator!r}")

    # ------------------------------------------------------------------ #
    # rewriting into SQL
    # ------------------------------------------------------------------ #
    def to_query(
        self,
        formula: Formula,
        value_assignment: Mapping[str, ValueRef],
        attribute_assignment: Mapping[str, str] | None = None,
    ) -> Query:
        """Rewrite the assignment into a statistical-check SQL query."""
        attribute_assignment = dict(attribute_assignment or {})
        missing = set(formula.value_variables()) - set(value_assignment)
        if missing:
            raise FormulaBindingError(
                f"value variables without an assignment: {sorted(missing)}"
            )
        select = self._node_to_expression(formula.root, value_assignment, attribute_assignment)
        from_items: list[FromItem] = []
        where: list[KeyDisjunction] = []
        for variable in formula.value_variables():
            reference = value_assignment[variable]
            from_items.append(FromItem(relation=reference.relation, alias=variable))
            where.append(
                KeyDisjunction(
                    predicates=(
                        KeyPredicate(
                            alias=variable,
                            attribute=self._key_attribute,
                            value=reference.key,
                        ),
                    )
                )
            )
        return Query(select=select, from_items=tuple(from_items), where=tuple(where))

    def instantiate(
        self,
        formula: Formula,
        value_assignment: Mapping[str, ValueRef],
        attribute_assignment: Mapping[str, str] | None = None,
    ) -> InstantiatedQuery:
        """Evaluate *and* rewrite one assignment, tolerating evaluation errors."""
        attribute_assignment = dict(attribute_assignment or {})
        query = self.to_query(formula, value_assignment, attribute_assignment)
        try:
            value: float | None = self.evaluate(formula, value_assignment, attribute_assignment)
        except (FormulaError, FormulaBindingError):
            value = None
        return InstantiatedQuery(
            formula=formula,
            value_assignment=dict(value_assignment),
            attribute_assignment=attribute_assignment,
            query=query,
            value=value,
            is_boolean=formula.comparison_operator() is not None,
        )

    def _node_to_expression(
        self,
        node: FormulaNode,
        value_assignment: Mapping[str, ValueRef],
        attribute_assignment: Mapping[str, str],
    ) -> Expression:
        if isinstance(node, Constant):
            return NumberLiteral(value=float(node.value))
        if isinstance(node, ValueVariable):
            reference = value_assignment[node.name]
            return ColumnRef(alias=node.name, attribute=reference.attribute)
        if isinstance(node, AttributeVariable):
            label = attribute_assignment.get(node.name)
            if label is None:
                raise FormulaBindingError(f"attribute variable {node.name!r} is unbound")
            try:
                numeric = float(label)
            except ValueError:
                raise FormulaBindingError(
                    f"attribute variable {node.name!r} bound to non-numeric label {label!r} "
                    "cannot appear arithmetically in SQL"
                ) from None
            return NumberLiteral(value=numeric)
        if isinstance(node, FormulaUnaryOp):
            return UnaryOp(
                operator=node.operator,
                operand=self._node_to_expression(node.operand, value_assignment, attribute_assignment),
            )
        if isinstance(node, FormulaBinaryOp):
            return BinaryOp(
                operator=node.operator,
                left=self._node_to_expression(node.left, value_assignment, attribute_assignment),
                right=self._node_to_expression(node.right, value_assignment, attribute_assignment),
            )
        if isinstance(node, FormulaComparison):
            return Comparison(
                operator=node.operator,
                left=self._node_to_expression(node.left, value_assignment, attribute_assignment),
                right=self._node_to_expression(node.right, value_assignment, attribute_assignment),
            )
        if isinstance(node, FormulaFunction):
            return FunctionCall(
                name=node.name,
                arguments=tuple(
                    self._node_to_expression(argument, value_assignment, attribute_assignment)
                    for argument in node.arguments
                ),
            )
        raise FormulaError(f"unknown formula node {node!r}")
