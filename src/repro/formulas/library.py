"""A library of named formula templates.

The paper learns formulas from past checks rather than assuming a fixed
library; nonetheless, a core of recurring statistical operations (growth
rates, shares, fold changes, sums) covers the majority of IEA checks — the
user study selects the "10 formulas that cover the majority of the claims".
The standard library below seeds the synthetic corpus generator and provides
convenient entry points for users writing their own checks.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.errors import FormulaError
from repro.formulas.ast import Formula
from repro.formulas.parser import parse_formula


@dataclass(frozen=True)
class FormulaTemplate:
    """A named, documented formula."""

    name: str
    formula: Formula
    description: str
    #: Verbal cues that the synthetic report generator uses when phrasing
    #: claims relying on this formula ("grew by", "accounted for", ...).
    cues: tuple[str, ...] = ()

    @property
    def label(self) -> str:
        """The canonical class label used by the formula classifier."""
        return self.formula.render()


class FormulaLibrary:
    """A registry of :class:`FormulaTemplate`, addressable by name or label."""

    def __init__(self, templates: Iterable[FormulaTemplate] = ()) -> None:
        self._by_name: dict[str, FormulaTemplate] = {}
        self._by_label: dict[str, FormulaTemplate] = {}
        for template in templates:
            self.register(template)

    def register(self, template: FormulaTemplate) -> None:
        if template.name in self._by_name:
            raise FormulaError(f"formula template {template.name!r} already registered")
        self._by_name[template.name] = template
        self._by_label[template.label] = template

    def by_name(self, name: str) -> FormulaTemplate:
        try:
            return self._by_name[name]
        except KeyError:
            raise FormulaError(f"unknown formula template {name!r}") from None

    def by_label(self, label: str) -> FormulaTemplate | None:
        return self._by_label.get(label)

    def names(self) -> list[str]:
        return list(self._by_name)

    def labels(self) -> list[str]:
        return [template.label for template in self._by_name.values()]

    def templates(self) -> list[FormulaTemplate]:
        return list(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._by_name


def standard_library() -> FormulaLibrary:
    """The built-in formula templates used across examples and synthesis."""
    definitions = [
        ("lookup", "a", "direct look-up of a reported value", ("reached", "stood at", "was")),
        ("growth_rate", "a / b - 1", "relative growth between two periods", ("grew by", "increased by", "declined by")),
        ("cagr", "POWER(a / b, 1 / (A1 - A2)) - 1", "compound annual growth rate", ("grew on average by", "expanded annually by")),
        ("fold_change", "a / b", "multiplicative factor between two periods", ("fold", "times higher than")),
        ("share", "SHARE(a, b)", "share of a part in a total", ("accounted for", "represented", "made up")),
        ("difference", "a - b", "absolute change between two values", ("rose by", "fell by", "added")),
        ("sum2", "a + b", "sum of two quantities", ("combined", "together reached")),
        ("sum3", "a + b + c", "sum of three quantities", ("in total", "altogether reached")),
        ("average2", "(a + b) / 2", "average of two quantities", ("averaged", "on average")),
        ("ratio_of_growth", "(a - b) / (c - d)", "ratio of two absolute changes", ("outpaced", "grew faster than")),
        ("share_of_growth", "(a - b) / c", "contribution of a change to a total", ("contributed", "accounted for the increase")),
        ("threshold_exceeds", "a > b", "one quantity exceeds another", ("surpassed", "overtook", "exceeded")),
        ("positive_growth", "(a - b) > 0", "a quantity increased", ("expanded", "increased", "rose")),
        ("negative_growth", "(a - b) < 0", "a quantity decreased", ("contracted", "declined", "fell")),
    ]
    templates = []
    for name, text, description, cues in definitions:
        templates.append(
            FormulaTemplate(
                name=name,
                formula=parse_formula(text),
                description=description,
                cues=tuple(cues),
            )
        )
    return FormulaLibrary(templates)
