"""Variable naming conventions and bindings for formulas."""

from __future__ import annotations

import string
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import FormulaBindingError

#: Names used for value variables, in allocation order (``a``, ``b``, …).
VALUE_VARIABLE_NAMES = tuple(string.ascii_lowercase)


def value_variable_name(index: int) -> str:
    """The ``index``-th value-variable name (``0 -> a``, ``25 -> z``, ``26 -> a1``)."""
    if index < 0:
        raise ValueError("variable index must be non-negative")
    letters = len(VALUE_VARIABLE_NAMES)
    if index < letters:
        return VALUE_VARIABLE_NAMES[index]
    return f"{VALUE_VARIABLE_NAMES[index % letters]}{index // letters}"


def attribute_variable_name(index: int) -> str:
    """The ``index``-th attribute-variable name (``0 -> A1``)."""
    if index < 0:
        raise ValueError("variable index must be non-negative")
    return f"A{index + 1}"


@dataclass(frozen=True)
class VariableBinding:
    """A concrete assignment of formula variables.

    ``values`` maps value-variable names to floats (the looked-up data
    values) and ``attributes`` maps attribute-variable names to attribute
    labels (kept as strings; numeric labels such as years are converted on
    demand when the formula uses them arithmetically).
    """

    values: Mapping[str, float] = field(default_factory=dict)
    attributes: Mapping[str, str] = field(default_factory=dict)

    def value(self, name: str) -> float:
        try:
            return float(self.values[name])
        except KeyError:
            raise FormulaBindingError(f"value variable {name!r} is unbound") from None

    def attribute(self, name: str) -> str:
        try:
            return self.attributes[name]
        except KeyError:
            raise FormulaBindingError(f"attribute variable {name!r} is unbound") from None

    def attribute_numeric(self, name: str) -> float:
        """The attribute label as a number (years are used arithmetically)."""
        label = self.attribute(name)
        try:
            return float(label)
        except ValueError:
            raise FormulaBindingError(
                f"attribute variable {name!r} is bound to non-numeric label {label!r}"
            ) from None

    def with_values(self, **values: float) -> "VariableBinding":
        merged = dict(self.values)
        merged.update(values)
        return VariableBinding(values=merged, attributes=dict(self.attributes))

    def with_attributes(self, **attributes: str) -> "VariableBinding":
        merged = dict(self.attributes)
        merged.update(attributes)
        return VariableBinding(values=dict(self.values), attributes=merged)
