"""Formula machinery (Section 4.2 of the paper).

A *formula* is the generalisation of the SELECT clause of a past check:
function names, operators and constants are preserved while concrete data
values become *value variables* (``a``, ``b``, …) and concrete attribute
labels become *attribute variables* (``A1``, ``A2``, …).  Formulas are the
classes predicted by the fourth classifier and are instantiated over the
candidate relations/keys/attributes during query generation (Algorithm 2).

Layering contract: layer 4 of the enforced import DAG — may import
``sqlengine``, ``dataset``/``ml``/``text``/``analysis``, ``config`` and
``errors``; never ``claims`` or anything above. Enforced by reprolint; see
``docs/architecture.md``.
"""

from repro.formulas.ast import (
    AttributeVariable,
    Constant,
    Formula,
    FormulaBinaryOp,
    FormulaComparison,
    FormulaFunction,
    FormulaUnaryOp,
    ValueVariable,
)
from repro.formulas.extraction import FormulaExtractor, GeneralizedCheck
from repro.formulas.instantiate import FormulaInstantiator, InstantiatedQuery, ValueRef
from repro.formulas.library import FormulaLibrary, standard_library
from repro.formulas.parser import parse_formula
from repro.formulas.variables import VariableBinding

__all__ = [
    "AttributeVariable",
    "Constant",
    "Formula",
    "FormulaBinaryOp",
    "FormulaComparison",
    "FormulaExtractor",
    "FormulaFunction",
    "FormulaInstantiator",
    "FormulaLibrary",
    "FormulaUnaryOp",
    "GeneralizedCheck",
    "InstantiatedQuery",
    "ValueRef",
    "ValueVariable",
    "VariableBinding",
    "parse_formula",
    "standard_library",
]
