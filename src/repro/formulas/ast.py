"""Abstract syntax tree for formulas with variables.

Example 8 of the paper: the SELECT clause
``POWER(a.2017/b.2016, 1/(2017-2016)) - 1`` generalises into the formula
``POWER(a/b, 1/(A1-A2)) - 1`` where ``a``/``b`` are value variables bound to
looked-up data values and ``A1``/``A2`` are attribute variables bound to the
attribute labels themselves (years behave as numbers inside formulas).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

FormulaNode = Union[
    "Constant",
    "ValueVariable",
    "AttributeVariable",
    "FormulaFunction",
    "FormulaBinaryOp",
    "FormulaUnaryOp",
    "FormulaComparison",
]


@dataclass(frozen=True)
class Constant:
    """A numeric constant preserved by generalisation."""

    value: float

    def render(self) -> str:
        if float(self.value).is_integer():
            return str(int(self.value))
        return repr(float(self.value))


@dataclass(frozen=True)
class ValueVariable:
    """A variable standing for a looked-up data value (``a``, ``b``, …)."""

    name: str

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class AttributeVariable:
    """A variable standing for an attribute label (``A1``, ``A2``, …)."""

    name: str

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class FormulaFunction:
    """A call to a function of the library ``F`` inside a formula."""

    name: str
    arguments: tuple[FormulaNode, ...]

    def render(self) -> str:
        rendered = ", ".join(argument.render() for argument in self.arguments)
        return f"{self.name.upper()}({rendered})"


@dataclass(frozen=True)
class FormulaBinaryOp:
    operator: str
    left: FormulaNode
    right: FormulaNode

    def render(self) -> str:
        return f"({self.left.render()} {self.operator} {self.right.render()})"


@dataclass(frozen=True)
class FormulaUnaryOp:
    operator: str
    operand: FormulaNode

    def render(self) -> str:
        return f"({self.operator}{self.operand.render()})"


@dataclass(frozen=True)
class FormulaComparison:
    """A comparison node — general claims may predict ``op`` inside the formula."""

    operator: str
    left: FormulaNode
    right: FormulaNode

    def render(self) -> str:
        return f"({self.left.render()} {self.operator} {self.right.render()})"


def walk(node: FormulaNode):
    """Yield every node of a formula tree, depth first."""
    yield node
    if isinstance(node, FormulaFunction):
        for argument in node.arguments:
            yield from walk(argument)
    elif isinstance(node, (FormulaBinaryOp, FormulaComparison)):
        yield from walk(node.left)
        yield from walk(node.right)
    elif isinstance(node, FormulaUnaryOp):
        yield from walk(node.operand)


@dataclass(frozen=True)
class Formula:
    """A named formula: a root expression plus derived metadata."""

    root: FormulaNode

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def value_variables(self) -> tuple[str, ...]:
        """Distinct value-variable names in first-appearance order."""
        names: list[str] = []
        for node in walk(self.root):
            if isinstance(node, ValueVariable) and node.name not in names:
                names.append(node.name)
        return tuple(names)

    def attribute_variables(self) -> tuple[str, ...]:
        """Distinct attribute-variable names in first-appearance order."""
        names: list[str] = []
        for node in walk(self.root):
            if isinstance(node, AttributeVariable) and node.name not in names:
                names.append(node.name)
        return tuple(names)

    def constants(self) -> tuple[float, ...]:
        return tuple(
            node.value for node in walk(self.root) if isinstance(node, Constant)
        )

    def function_names(self) -> tuple[str, ...]:
        return tuple(
            node.name.upper() for node in walk(self.root) if isinstance(node, FormulaFunction)
        )

    def comparison_operator(self) -> str | None:
        """The comparison operator if the formula predicts one (general claims)."""
        for node in walk(self.root):
            if isinstance(node, FormulaComparison):
                return node.operator
        return None

    def operation_count(self) -> int:
        """Number of operations (functions, arithmetic and comparisons)."""
        return sum(
            1
            for node in walk(self.root)
            if isinstance(
                node, (FormulaFunction, FormulaBinaryOp, FormulaUnaryOp, FormulaComparison)
            )
        )

    def complexity(self) -> int:
        """Number of elements (variables, constants, operations) in the formula."""
        elements = 0
        for node in walk(self.root):
            if isinstance(node, (ValueVariable, AttributeVariable, Constant)):
                elements += 1
            elif isinstance(
                node, (FormulaFunction, FormulaBinaryOp, FormulaUnaryOp, FormulaComparison)
            ):
                elements += 1
        return elements

    # ------------------------------------------------------------------ #
    # rendering / identity
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Canonical textual form, used as the classifier's class label."""
        return self.root.render()

    def __str__(self) -> str:
        return self.render()
