"""Parser turning formula text back into a :class:`Formula`.

Formula labels are stored as canonical strings (for instance in the training
corpus of the formula classifier); this parser reconstructs the AST, so that
formula classes round-trip between text and structure.
"""

from __future__ import annotations

import re

from repro.errors import FormulaSyntaxError
from repro.formulas.ast import (
    AttributeVariable,
    Constant,
    Formula,
    FormulaBinaryOp,
    FormulaComparison,
    FormulaFunction,
    FormulaNode,
    FormulaUnaryOp,
    ValueVariable,
)
from repro.sqlengine.lexer import Token, TokenType, tokenize
from repro.errors import SQLSyntaxError

_ATTRIBUTE_VARIABLE_PATTERN = re.compile(r"^A\d+$")
_COMPARISON_OPERATORS = {"<", ">", "<=", ">=", "=", "<>", "!="}


class _FormulaParser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._current
        self._index += 1
        return token

    def _expect(self, token_type: TokenType) -> Token:
        token = self._current
        if token.type is not token_type:
            raise FormulaSyntaxError(
                f"expected {token_type.name}, found {token.value!r} at {token.position}"
            )
        return self._advance()

    # ------------------------------------------------------------------ #
    # grammar (mirrors the SQL expression grammar, over variables)
    # ------------------------------------------------------------------ #
    def parse(self) -> FormulaNode:
        node = self.parse_comparison()
        if self._current.type is not TokenType.END:
            raise FormulaSyntaxError(
                f"unexpected trailing token {self._current.value!r} "
                f"at {self._current.position}"
            )
        return node

    def parse_comparison(self) -> FormulaNode:
        left = self.parse_sum()
        token = self._current
        if token.type is TokenType.COMPARISON and token.value in _COMPARISON_OPERATORS:
            self._advance()
            right = self.parse_sum()
            return FormulaComparison(operator=token.value, left=left, right=right)
        return left

    def parse_sum(self) -> FormulaNode:
        node = self.parse_product()
        while self._current.type is TokenType.OPERATOR and self._current.value in "+-":
            operator = self._advance().value
            right = self.parse_product()
            node = FormulaBinaryOp(operator=operator, left=node, right=right)
        return node

    def parse_product(self) -> FormulaNode:
        node = self.parse_unary()
        while self._current.type is TokenType.OPERATOR and self._current.value in "*/":
            operator = self._advance().value
            right = self.parse_unary()
            node = FormulaBinaryOp(operator=operator, left=node, right=right)
        return node

    def parse_unary(self) -> FormulaNode:
        if self._current.type is TokenType.OPERATOR and self._current.value in "+-":
            operator = self._advance().value
            return FormulaUnaryOp(operator=operator, operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> FormulaNode:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            return Constant(value=float(token.value))
        if token.type is TokenType.LPAREN:
            self._advance()
            inner = self.parse_comparison()
            self._expect(TokenType.RPAREN)
            return inner
        if token.type in (TokenType.IDENTIFIER, TokenType.KEYWORD):
            return self._parse_identifier()
        raise FormulaSyntaxError(f"unexpected token {token.value!r} at {token.position}")

    def _parse_identifier(self) -> FormulaNode:
        name = self._advance().value
        if self._current.type is TokenType.LPAREN:
            self._advance()
            arguments: list[FormulaNode] = []
            if self._current.type is not TokenType.RPAREN:
                arguments.append(self.parse_comparison())
                while self._current.type is TokenType.COMMA:
                    self._advance()
                    arguments.append(self.parse_comparison())
            self._expect(TokenType.RPAREN)
            return FormulaFunction(name=name.upper(), arguments=tuple(arguments))
        if _ATTRIBUTE_VARIABLE_PATTERN.match(name):
            return AttributeVariable(name=name)
        return ValueVariable(name=name)


def parse_formula(text: str) -> Formula:
    """Parse formula text such as ``"POWER(a / b, 1 / (A1 - A2)) - 1"``."""
    if not text or not text.strip():
        raise FormulaSyntaxError("empty formula text")
    try:
        tokens = tokenize(text)
    except SQLSyntaxError as error:
        raise FormulaSyntaxError(str(error)) from error
    root = _FormulaParser(tokens).parse()
    return Formula(root=root)
