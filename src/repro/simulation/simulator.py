"""Full-report verification simulator (Section 6.2).

The simulator builds a synthetic corpus for a scenario, then runs the three
compared processes over it in a cold-start setting:

* **Manual** — every claim checked by hand,
* **Sequential** — Scrutinizer without claim ordering,
* **Scrutinizer** — the full system with ILP-based batch selection.

Outputs feed Table 2 and Figures 7–9 of the paper.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro.api.builder import ScrutinizerBuilder
from repro.api.service import BatchResult
from repro.claims.corpus import ClaimCorpus
from repro.core.baselines import ManualBaseline
from repro.core.scrutinizer import Scrutinizer
from repro.errors import SimulationError
from repro.simulation.results import SimulationSummary, SystemRunResult
from repro.simulation.scenarios import SimulationScenario, small_scenario
from repro.synth.report_generator import generate_corpus
from repro.text.features import ClaimFeaturizer
from repro.translation.preprocess import ClaimPreprocessor
from repro.translation.translator import ClaimTranslator

#: Progress hook: called with the system name and each completed batch.
SimulationProgress = Callable[[str, BatchResult], None]


class ReportSimulator:
    """Runs the compared verification processes over one synthetic report.

    ``progress`` (optional) receives ``(system_name, batch_result)`` after
    every batch of the assisted runs, so long simulations can report
    incremental state instead of going dark until the end.
    """

    def __init__(
        self,
        scenario: SimulationScenario | None = None,
        progress: SimulationProgress | None = None,
    ) -> None:
        self.scenario = scenario if scenario is not None else small_scenario()
        self._corpus: ClaimCorpus | None = None
        self._progress = progress

    # ------------------------------------------------------------------ #
    # corpus management
    # ------------------------------------------------------------------ #
    @property
    def corpus(self) -> ClaimCorpus:
        if self._corpus is None:
            self._corpus = generate_corpus(self.scenario.corpus)
        return self._corpus

    def use_corpus(self, corpus: ClaimCorpus) -> None:
        """Inject a pre-built corpus (used by tests and benchmarks)."""
        self._corpus = corpus

    # ------------------------------------------------------------------ #
    # individual runs
    # ------------------------------------------------------------------ #
    def _build_translator(self) -> ClaimTranslator:
        featurizer = ClaimFeaturizer(self.scenario.featurizer)
        preprocessor = ClaimPreprocessor(featurizer)
        translator = ClaimTranslator(
            self.corpus.database,
            config=self.scenario.system.translation,
            preprocessor=preprocessor,
        )
        claims = [annotated.claim for annotated in self.corpus]
        translator.bootstrap(claims, fit_features_only=True)
        return translator

    def run_manual(self) -> SystemRunResult:
        started = time.perf_counter()
        baseline = ManualBaseline(self.corpus, config=self.scenario.system)
        report = baseline.verify()
        return SystemRunResult(
            system_name="Manual",
            report=report,
            wall_clock_seconds=time.perf_counter() - started,
        )

    def _build_system(self, system_name: str) -> Scrutinizer:
        """Assemble one assisted system through the builder API."""
        builder = (
            ScrutinizerBuilder(self.corpus)
            .with_config(self.scenario.system)
            .with_translator(self._build_translator())
            .with_accuracy_sample_size(self.scenario.accuracy_sample_size)
        )
        if system_name == "Sequential":
            builder.sequential_baseline()
        if self._progress is not None:
            progress = self._progress
            builder.on_batch_complete(lambda result: progress(system_name, result))
        return builder.build()

    def run_sequential(self, max_batches: int | None = None) -> SystemRunResult:
        started = time.perf_counter()
        system = self._build_system("Sequential")
        report = system.verify(max_batches=max_batches)
        return SystemRunResult(
            system_name="Sequential",
            report=report,
            wall_clock_seconds=time.perf_counter() - started,
        )

    def run_scrutinizer(self, max_batches: int | None = None) -> SystemRunResult:
        started = time.perf_counter()
        system = self._build_system("Scrutinizer")
        report = system.verify(max_batches=max_batches)
        return SystemRunResult(
            system_name="Scrutinizer",
            report=report,
            wall_clock_seconds=time.perf_counter() - started,
        )

    # ------------------------------------------------------------------ #
    # full comparison (Table 2)
    # ------------------------------------------------------------------ #
    def run_all(self, max_batches: int | None = None) -> SimulationSummary:
        """Run Manual, Sequential and Scrutinizer over the same corpus."""
        summary = SimulationSummary()
        summary.add(self.run_manual())
        summary.add(self.run_sequential(max_batches=max_batches))
        summary.add(self.run_scrutinizer(max_batches=max_batches))
        return summary

    def run(self, system_name: str, max_batches: int | None = None) -> SystemRunResult:
        """Run a single named system."""
        name = system_name.lower()
        if name == "manual":
            return self.run_manual()
        if name == "sequential":
            return self.run_sequential(max_batches=max_batches)
        if name == "scrutinizer":
            return self.run_scrutinizer(max_batches=max_batches)
        raise SimulationError(f"unknown system {system_name!r}")
