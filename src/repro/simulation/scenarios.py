"""Simulation scenarios: corpus size, batching and system configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BatchingConfig, ScrutinizerConfig
from repro.synth.energy_data import EnergyDataConfig
from repro.synth.report_generator import SyntheticCorpusConfig
from repro.text.features import FeaturizerConfig


@dataclass(frozen=True)
class SimulationScenario:
    """Everything needed to run one report-level simulation."""

    name: str
    corpus: SyntheticCorpusConfig
    system: ScrutinizerConfig
    featurizer: FeaturizerConfig = field(default_factory=FeaturizerConfig)
    #: Claims sampled per batch when evaluating classifier accuracy.
    accuracy_sample_size: int = 60


def default_scenario(seed: int = 7) -> SimulationScenario:
    """The paper-scale scenario: 1539 claims, three checkers, batches of 100.

    Running it end to end takes tens of minutes on a laptop because the
    classifiers are retrained after every batch; use
    :func:`small_scenario` for tests and quick benchmarks.
    """
    corpus = SyntheticCorpusConfig(
        claim_count=1539,
        section_count=40,
        explicit_fraction=0.5,
        error_fraction=0.25,
        data=EnergyDataConfig(relation_count=60, rows_per_relation=22, seed=seed + 1),
        seed=seed,
    )
    system = ScrutinizerConfig(
        checker_count=3,
        options_per_property=10,
        batching=BatchingConfig(max_batch_size=100, utility_weight=1.0),
        seed=seed,
    )
    featurizer = FeaturizerConfig(word_max_features=1200, char_max_features=1200, seed=seed)
    return SimulationScenario(
        name="paper-scale",
        corpus=corpus,
        system=system,
        featurizer=featurizer,
        accuracy_sample_size=80,
    )


def small_scenario(seed: int = 7, claim_count: int = 180) -> SimulationScenario:
    """A laptop-friendly scenario preserving the shape of the full run."""
    corpus = SyntheticCorpusConfig(
        claim_count=claim_count,
        section_count=12,
        explicit_fraction=0.5,
        error_fraction=0.25,
        data=EnergyDataConfig(relation_count=20, rows_per_relation=16, seed=seed + 1),
        seed=seed,
    )
    system = ScrutinizerConfig(
        checker_count=3,
        options_per_property=10,
        batching=BatchingConfig(max_batch_size=30, utility_weight=1.0),
        seed=seed,
    )
    featurizer = FeaturizerConfig(word_max_features=400, char_max_features=400, seed=seed)
    return SimulationScenario(
        name="small",
        corpus=corpus,
        system=system,
        featurizer=featurizer,
        accuracy_sample_size=40,
    )
