"""Result containers for the report-level simulation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.report import VerificationReport


@dataclass(frozen=True)
class SystemRunResult:
    """Outcome of simulating one system (Manual / Sequential / Scrutinizer)."""

    system_name: str
    report: VerificationReport
    wall_clock_seconds: float

    @property
    def total_weeks(self) -> float:
        return self.report.total_weeks

    @property
    def computation_minutes(self) -> float:
        return self.report.computation_seconds / 60.0

    @property
    def average_accuracy(self) -> float:
        return self.report.average_classifier_accuracy("average")

    @property
    def max_accuracy(self) -> float:
        return self.report.max_classifier_accuracy("average")

    def cumulative_weeks(self, checkers: int | None = None) -> list[float]:
        """Accumulated verification time in weeks after each claim (Figure 7)."""
        from repro.core.report import seconds_to_weeks

        team = checkers if checkers is not None else self.report.checker_count
        return [
            seconds_to_weeks(seconds, checkers=team)
            for seconds in self.report.cumulative_seconds()
        ]

    def accuracy_series(self, series: str = "average") -> list[float]:
        """Per-batch accuracy values (Figures 8 and 9)."""
        return [entry.get(series, 0.0) for entry in self.report.accuracy_history]


@dataclass
class SimulationSummary:
    """The Table 2 style summary across systems."""

    runs: dict[str, SystemRunResult] = field(default_factory=dict)

    def add(self, run: SystemRunResult) -> None:
        self.runs[run.system_name] = run

    def get(self, system_name: str) -> SystemRunResult:
        return self.runs[system_name]

    def savings(self, system_name: str, baseline: str = "Manual") -> float:
        """Fractional time savings of ``system_name`` against ``baseline``."""
        if baseline not in self.runs or system_name not in self.runs:
            return 0.0
        return self.runs[system_name].report.savings_against(self.runs[baseline].report)

    def table_rows(self) -> list[dict[str, object]]:
        """Rows matching Table 2: time, savings, accuracy, computation."""
        rows: list[dict[str, object]] = []
        for name, run in self.runs.items():
            rows.append(
                {
                    "system": name,
                    "time_weeks": round(run.total_weeks, 2),
                    "savings_pct": round(100 * self.savings(name), 1) if name != "Manual" else None,
                    "avg_accuracy_pct": round(100 * run.average_accuracy, 1)
                    if name != "Manual"
                    else None,
                    "max_accuracy_pct": round(100 * run.max_accuracy, 1)
                    if name != "Manual"
                    else None,
                    "computation_minutes": round(run.computation_minutes, 1)
                    if name != "Manual"
                    else None,
                }
            )
        return rows
