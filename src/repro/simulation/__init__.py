"""Report-level verification simulation (Section 6.2 of the paper).

The simulator runs the Manual, Sequential and Scrutinizer processes over a
full synthetic report in a cold-start setting and collects the quantities
the paper reports: total verification time (weeks), savings, classifier
accuracy over time and computational overheads.

Layering contract: layer 11 of the enforced import DAG (peer of
``runtime``) — may import ``api`` and everything below it; never
``serving`` or ``gateway``. Enforced by reprolint; see
``docs/architecture.md``.
"""

from repro.simulation.results import SimulationSummary, SystemRunResult
from repro.simulation.scenarios import SimulationScenario, default_scenario, small_scenario
from repro.simulation.simulator import ReportSimulator

__all__ = [
    "ReportSimulator",
    "SimulationScenario",
    "SimulationSummary",
    "SystemRunResult",
    "default_scenario",
    "small_scenario",
]
