"""Exception hierarchy shared by every subsystem of the reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class DatasetError(ReproError):
    """Problems with relations or the database corpus."""


class UnknownRelationError(DatasetError):
    """A query referenced a relation that is not in the database."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownKeyError(DatasetError):
    """A look-up referenced a primary-key value missing from a relation."""

    def __init__(self, relation: str, key: str) -> None:
        super().__init__(f"relation {relation!r} has no key {key!r}")
        self.relation = relation
        self.key = key


class UnknownAttributeError(DatasetError):
    """A look-up referenced an attribute missing from a relation."""

    def __init__(self, relation: str, attribute: str) -> None:
        super().__init__(f"relation {relation!r} has no attribute {attribute!r}")
        self.relation = relation
        self.attribute = attribute


class SchemaError(DatasetError):
    """A relation was constructed with an inconsistent schema."""


class SQLError(ReproError):
    """Problems in the statistical-check SQL fragment engine."""


class SQLSyntaxError(SQLError):
    """The SQL text could not be parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class SQLExecutionError(SQLError):
    """The query parsed but could not be evaluated on the database."""


class UnknownFunctionError(SQLError):
    """The SELECT clause used a function that is not in the library ``F``."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown SQL function: {name!r}")
        self.name = name


class FormulaError(ReproError):
    """Problems with formula parsing, extraction or instantiation."""


class FormulaSyntaxError(FormulaError):
    """The formula text could not be parsed."""


class FormulaBindingError(FormulaError):
    """A formula was instantiated with an incomplete variable binding."""


class ClaimError(ReproError):
    """Problems with claims, documents or annotations."""


class TranslationError(ReproError):
    """The claim-to-query translation pipeline failed."""


class NotFittedError(ReproError):
    """A model was used before being trained."""


class PlanningError(ReproError):
    """Question planning or claim selection failed."""


class InfeasibleSelectionError(PlanningError):
    """No claim batch satisfies the selection constraints (Definition 9).

    ``constraint`` names the violated constraint when known (``"pool"``,
    ``"min_batch_size"``, ``"batch_bounds"`` or ``"cost_threshold"``), so
    callers of :func:`~repro.planning.batching.select_claim_batch` can see
    *which* bound made the instance infeasible instead of guessing from
    the message text.
    """

    def __init__(self, message: str, *, constraint: str | None = None) -> None:
        super().__init__(message)
        self.constraint = constraint


class CrowdError(ReproError):
    """Problems in the simulated crowd of domain experts."""


class SimulationError(ReproError):
    """Problems in the report-level verification simulator."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class SerializationError(ReproError):
    """A report or verification payload could not be (de)serialized."""


class ServingError(ReproError):
    """Problems in the multi-tenant serving layer."""


class UnknownTenantError(ServingError):
    """A request referenced a tenant the server has never admitted."""

    def __init__(self, tenant_id: str) -> None:
        super().__init__(f"unknown tenant: {tenant_id!r}")
        self.tenant_id = tenant_id


class AdmissionError(ServingError):
    """The admission policy rejected a request (registry or quota bound)."""


class BackpressureError(AdmissionError):
    """The submission queue is full; the caller should retry later."""


class StorageError(ReproError):
    """Problems in the out-of-core claim/feature store (:mod:`repro.store`)."""


class StoreManifestError(StorageError):
    """A store manifest does not describe the on-disk files it points at.

    Raised when a snapshot's recorded manifest is malformed, names a
    directory that no longer exists, or disagrees with the SQLite catalog
    found there (e.g. a feature generation whose memmap file is missing).
    """


class GatewayError(ReproError):
    """Problems in the network gateway in front of the serving layer."""


class ProtocolError(GatewayError):
    """A wire frame could not be encoded or decoded."""


class JournalError(GatewayError):
    """Problems writing or reading the write-ahead submission journal."""


class JournalCorruptionError(JournalError):
    """A journal segment is damaged beyond the recoverable cases.

    The scanner tolerates truncated tails and CRC-mismatched records by
    skipping and counting them; this error is reserved for callers that
    ask for strict reads (``scan_journal(..., strict=True)``).
    """
