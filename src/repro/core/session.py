"""Mutable state of one verification run of Algorithm 1."""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.report import ClaimVerification
from repro.errors import SimulationError


@dataclass(frozen=True)
class BatchRecord:
    """Summary of one iteration of the main loop."""

    batch_index: int
    claim_ids: tuple[str, ...]
    seconds_spent: float
    accuracy_by_property: dict[str, float] = field(default_factory=dict)
    solver: str = ""

    @property
    def batch_size(self) -> int:
        return len(self.claim_ids)

    # ------------------------------------------------------------------ #
    # (de)serialization — used by run checkpoints
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        return {
            "batch_index": self.batch_index,
            "claim_ids": list(self.claim_ids),
            "seconds_spent": self.seconds_spent,
            "accuracy_by_property": dict(self.accuracy_by_property),
            "solver": self.solver,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "BatchRecord":
        return cls(
            batch_index=int(payload["batch_index"]),  # type: ignore[arg-type]
            claim_ids=tuple(str(claim_id) for claim_id in payload["claim_ids"]),  # type: ignore[union-attr]
            seconds_spent=float(payload["seconds_spent"]),  # type: ignore[arg-type]
            accuracy_by_property={
                str(series): float(value)
                for series, value in payload.get("accuracy_by_property", {}).items()  # type: ignore[union-attr]
            },
            solver=str(payload.get("solver", "")),
        )


class VerificationSession:
    """Tracks which claims remain to verify and what has been decided."""

    def __init__(self, claim_ids: Sequence[str]) -> None:
        if not claim_ids:
            raise SimulationError("a verification session needs at least one claim")
        self._pending: list[str] = list(dict.fromkeys(claim_ids))
        self._verified: dict[str, ClaimVerification] = {}
        self._batches: list[BatchRecord] = []

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    @property
    def pending_claim_ids(self) -> tuple[str, ...]:
        return tuple(self._pending)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def verified_count(self) -> int:
        return len(self._verified)

    @property
    def is_complete(self) -> bool:
        return not self._pending

    @property
    def batches(self) -> tuple[BatchRecord, ...]:
        return tuple(self._batches)

    @property
    def verifications(self) -> tuple[ClaimVerification, ...]:
        return tuple(self._verified.values())

    # ------------------------------------------------------------------ #
    # transitions
    # ------------------------------------------------------------------ #
    def submit(self, claim_ids: Sequence[str]) -> int:
        """Add claims to the pending pool mid-run; returns how many were new.

        Claims already pending or already verified in this session are
        ignored, so resubmission is safe.
        """
        added = 0
        pending = set(self._pending)
        for claim_id in claim_ids:
            if claim_id in pending or claim_id in self._verified:
                continue
            self._pending.append(claim_id)
            pending.add(claim_id)
            added += 1
        return added

    def mark_verified(self, verification: ClaimVerification) -> None:
        claim_id = verification.claim_id
        if claim_id not in self._pending:
            raise SimulationError(f"claim {claim_id!r} is not pending verification")
        self._pending.remove(claim_id)
        self._verified[claim_id] = verification

    def record_batch(self, record: BatchRecord) -> None:
        self._batches.append(record)

    def verification_of(self, claim_id: str) -> ClaimVerification:
        try:
            return self._verified[claim_id]
        except KeyError:
            raise SimulationError(f"claim {claim_id!r} has not been verified yet") from None

    # ------------------------------------------------------------------ #
    # checkpoint state
    # ------------------------------------------------------------------ #
    @classmethod
    def from_state(
        cls,
        pending: Sequence[str],
        verifications: Sequence[ClaimVerification],
        batches: Sequence[BatchRecord],
    ) -> "VerificationSession":
        """Rebuild a mid-run session from checkpointed state.

        Unlike the constructor this accepts an empty pending pool: a
        checkpoint taken after the final batch has verified claims but
        nothing left to do.
        """
        session = cls.__new__(cls)
        session._pending = list(dict.fromkeys(pending))
        session._verified = {
            verification.claim_id: verification for verification in verifications
        }
        session._batches = list(batches)
        return session
