"""The Scrutinizer system: the main verification loop of Algorithm 1.

Claims are verified in batches.  Each iteration selects the next batch
(Section 5.2), plans the question sequence for every claim in it
(Section 5.1), collects answers from the (simulated) crowd, generates and
tentatively executes candidate queries (Section 4), decides verdicts and
finally retrains the classifiers on the newly verified claims.
"""

from __future__ import annotations

import time
from collections.abc import Mapping, Sequence

import numpy as np

from repro.claims.corpus import ClaimCorpus
from repro.claims.model import Claim, ClaimProperty
from repro.config import ScrutinizerConfig
from repro.core.report import ClaimVerification, VerificationReport
from repro.core.session import BatchRecord, VerificationSession
from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.timing import TimingModel
from repro.crowd.voting import majority_vote
from repro.crowd.worker import CheckerResponse, SimulatedChecker
from repro.errors import SimulationError
from repro.ml.base import Prediction
from repro.planning.batching import BatchCandidate
from repro.planning.planner import QuestionPlanner
from repro.translation.translator import ClaimTranslator


class Scrutinizer:
    """Mixed-initiative claim verification over an annotated corpus.

    Parameters
    ----------
    corpus:
        The annotated claim corpus (document, claims, ground truth, data).
        The ground truth drives the simulated crowd; a deployment against
        real experts would replace :class:`GroundTruthOracle` and
        :class:`SimulatedChecker` with a user interface.
    config:
        System configuration; ``config.claim_ordering=False`` yields the
        *Sequential* baseline of the evaluation.
    translator:
        Optional pre-built translator (e.g. already bootstrapped on past
        checks).  When omitted a fresh translator is created and fitted on
        the corpus texts.
    checkers:
        Optional simulated checkers; defaults to ``config.checker_count``
        workers with distinct seeds.
    """

    def __init__(
        self,
        corpus: ClaimCorpus,
        config: ScrutinizerConfig | None = None,
        translator: ClaimTranslator | None = None,
        checkers: Sequence[SimulatedChecker] | None = None,
        accuracy_sample_size: int = 60,
    ) -> None:
        self.corpus = corpus
        self.config = config if config is not None else ScrutinizerConfig()
        self.planner = QuestionPlanner(self.config)
        self.oracle = GroundTruthOracle(corpus, value_tolerance=0.05)
        self._timing = TimingModel(cost_model=self.config.cost_model, seed=self.config.seed)
        self._accuracy_sample_size = accuracy_sample_size
        self._rng = np.random.default_rng(self.config.seed)
        if translator is not None:
            self.translator = translator
        else:
            self.translator = ClaimTranslator(corpus.database, config=self.config.translation)
            claims = [annotated.claim for annotated in corpus]
            self.translator.bootstrap(claims, fit_features_only=True)
        if checkers is not None:
            self.checkers = list(checkers)
        else:
            self.checkers = [
                SimulatedChecker(
                    checker_id=f"S{index + 1}",
                    oracle=self.oracle,
                    timing=self._timing,
                    seed=self.config.seed + index,
                )
                for index in range(self.config.checker_count)
            ]
        if not self.checkers:
            raise SimulationError("Scrutinizer needs at least one checker")

    # ------------------------------------------------------------------ #
    # bootstrap helpers
    # ------------------------------------------------------------------ #
    def warm_start(self, claim_ids: Sequence[str] | None = None) -> None:
        """Train the classifiers on previously checked claims.

        In the IEA deployment the annotations of past editions provide
        immediate training data; ``claim_ids`` restricts the warm start to a
        subset (defaults to the whole corpus).
        """
        ids = list(claim_ids) if claim_ids is not None else list(self.corpus.claim_ids)
        claims = [self.corpus.claim(claim_id) for claim_id in ids]
        truths = [self.corpus.ground_truth(claim_id) for claim_id in ids]
        self.translator.bootstrap(claims, truths)

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def verify(
        self,
        claim_ids: Sequence[str] | None = None,
        max_batches: int | None = None,
        track_accuracy: bool = True,
    ) -> VerificationReport:
        """Verify claims and return the verification report."""
        ids = list(claim_ids) if claim_ids is not None else list(self.corpus.claim_ids)
        session = VerificationSession(ids)
        report = VerificationReport(
            system_name="Scrutinizer" if self.config.claim_ordering else "Sequential",
            checker_count=self.config.checker_count,
        )
        document_order = list(self.corpus.document.claim_ids)
        section_read_costs = {
            section.section_id: section.read_cost
            for section in self.corpus.document.sections
        }
        batch_index = 0
        while not session.is_complete:
            if max_batches is not None and batch_index >= max_batches:
                break
            batch_index += 1
            planning_started = time.perf_counter()
            pending = session.pending_claim_ids
            predictions_by_claim = self._predict_pending(pending)
            candidates = self._batch_candidates(pending, predictions_by_claim)
            selection = self.planner.plan_batch(
                candidates, section_read_costs, document_order=document_order
            )
            report.computation_seconds += time.perf_counter() - planning_started

            batch_seconds = 0.0
            verified_claims: list[Claim] = []
            for position, claim_id in enumerate(selection.claim_ids):
                claim = self.corpus.claim(claim_id)
                predictions = predictions_by_claim.get(claim_id)
                verification = self._verify_claim(
                    claim, predictions, position, batch_index
                )
                session.mark_verified(verification)
                report.add(verification)
                batch_seconds += verification.elapsed_seconds
                verified_claims.append(claim)

            retrain_started = time.perf_counter()
            self._retrain(verified_claims)
            report.computation_seconds += time.perf_counter() - retrain_started

            accuracy = {}
            if track_accuracy:
                accuracy = self._evaluate_accuracy(session.pending_claim_ids)
                report.accuracy_history.append(accuracy)
            session.record_batch(
                BatchRecord(
                    batch_index=batch_index,
                    claim_ids=selection.claim_ids,
                    seconds_spent=batch_seconds,
                    accuracy_by_property=accuracy,
                    solver=selection.solver,
                )
            )
        report.verifications.sort(key=lambda verification: verification.batch_index)
        self._last_session = session
        return report

    @property
    def last_session(self) -> VerificationSession | None:
        return getattr(self, "_last_session", None)

    # ------------------------------------------------------------------ #
    # per-claim verification
    # ------------------------------------------------------------------ #
    def _verify_claim(
        self,
        claim: Claim,
        predictions: Mapping[ClaimProperty, Prediction] | None,
        position: int,
        batch_index: int,
    ) -> ClaimVerification:
        votes: list[bool] = []
        responses: list[CheckerResponse] = []
        assigned = self._assign_checkers(position)
        for checker in assigned:
            if predictions is None:
                response = checker.verify_manually(claim)
            else:
                plan = self._build_plan(claim, predictions)
                response = checker.verify_with_plan(claim, plan)
            responses.append(response)
            if response.decided:
                votes.append(bool(response.verdict))
        elapsed = sum(response.elapsed_seconds for response in responses)
        decided_responses = [response for response in responses if response.decided]
        if votes:
            verdict: bool | None = majority_vote(votes)
        else:
            verdict = None
        chosen_sql = next(
            (response.chosen_sql for response in decided_responses if response.chosen_sql),
            None,
        )
        suggested_value = next(
            (
                response.suggested_value
                for response in decided_responses
                if response.suggested_value is not None
            ),
            None,
        )
        return ClaimVerification(
            claim_id=claim.claim_id,
            verdict=verdict,
            verified_sql=chosen_sql,
            elapsed_seconds=elapsed,
            checker_votes=tuple(votes),
            suggested_value=suggested_value,
            skipped=not bool(votes),
            batch_index=batch_index,
        )

    def _build_plan(self, claim: Claim, predictions: Mapping[ClaimProperty, Prediction]):
        """Two-phase planning: context screens first, then the final screen.

        The context (relations, keys, attributes) validated by the crowd
        feeds query generation, whose candidates populate the final screen —
        exactly the workflow of Section 3.1/4.3.
        """
        context_plan = self.planner.plan_questions(claim, predictions)
        validated_context: dict[ClaimProperty, tuple[str, ...]] = {}
        for screen in context_plan.screens:
            if screen.claim_property is ClaimProperty.FORMULA:
                continue
            answer = self.oracle.answer_screen(claim.claim_id, screen)
            validated_context[screen.claim_property] = answer.selected_labels
        translation = self.translator.translate(claim, validated_context)
        return self.planner.plan_questions(claim, predictions, translation.generation)

    def _assign_checkers(self, position: int) -> list[SimulatedChecker]:
        """Round-robin assignment of ``votes_per_claim`` checkers to a claim."""
        count = min(self.config.votes_per_claim, len(self.checkers))
        start = position % len(self.checkers)
        return [self.checkers[(start + offset) % len(self.checkers)] for offset in range(count)]

    # ------------------------------------------------------------------ #
    # batch construction and retraining
    # ------------------------------------------------------------------ #
    def _predict_pending(
        self, pending: Sequence[str]
    ) -> dict[str, dict[ClaimProperty, Prediction]]:
        if not self.translator.is_trained:
            return {}
        predictions: dict[str, dict[ClaimProperty, Prediction]] = {}
        for claim_id in pending:
            predictions[claim_id] = self.translator.predict(self.corpus.claim(claim_id))
        return predictions

    def _batch_candidates(
        self,
        pending: Sequence[str],
        predictions_by_claim: Mapping[str, Mapping[ClaimProperty, Prediction]],
    ) -> list[BatchCandidate]:
        candidates: list[BatchCandidate] = []
        for claim_id in pending:
            claim = self.corpus.claim(claim_id)
            predictions = predictions_by_claim.get(claim_id)
            if predictions is None:
                cost = self.planner.cost_model.manual_cost
                utility = 1.0
            else:
                cost = self.planner.estimate_cost(predictions)
                utility = self.planner.estimate_utility(predictions)
            candidates.append(
                BatchCandidate(
                    claim_id=claim_id,
                    section_id=claim.section_id,
                    verification_cost=cost,
                    training_utility=utility,
                )
            )
        return candidates

    def _retrain(self, verified_claims: Sequence[Claim]) -> None:
        if not verified_claims:
            return
        truths = [self.corpus.ground_truth(claim.claim_id) for claim in verified_claims]
        if self.translator.is_trained:
            self.translator.retrain(list(verified_claims), truths)
        else:
            claims = [self.corpus.claim(claim_id) for claim_id in self.corpus.claim_ids]
            self.translator.bootstrap(claims, truths=None, fit_features_only=True)
            self.translator.retrain(list(verified_claims), truths)

    # ------------------------------------------------------------------ #
    # accuracy tracking (Figures 8 and 9)
    # ------------------------------------------------------------------ #
    def _evaluate_accuracy(self, pending: Sequence[str]) -> dict[str, float]:
        if not self.translator.is_trained or not pending:
            scores = {prop.value: 0.0 for prop in ClaimProperty.ordered()}
            scores["average"] = 0.0
            return scores
        sample_ids = list(pending)
        if len(sample_ids) > self._accuracy_sample_size:
            chosen = self._rng.choice(
                len(sample_ids), size=self._accuracy_sample_size, replace=False
            )
            sample_ids = [sample_ids[int(index)] for index in chosen]
        claims = [self.corpus.claim(claim_id) for claim_id in sample_ids]
        truths = [self.corpus.ground_truth(claim_id) for claim_id in sample_ids]
        per_property = self.translator.suite.evaluate_accuracy(claims, truths, top_k=1)
        scores = {prop.value: score for prop, score in per_property.items()}
        scores["average"] = float(np.mean(list(per_property.values())))
        return scores
