"""The Scrutinizer system: the main verification loop of Algorithm 1.

Claims are verified in batches.  Each iteration selects the next batch
(Section 5.2), plans the question sequence for every claim in it
(Section 5.1), collects answers from the (simulated) crowd, generates and
tentatively executes candidate queries (Section 4), decides verdicts and
finally retrains the classifiers on the newly verified claims.

The loop itself lives in :class:`~repro.api.service.VerificationService`;
this class is the classic one-shot facade over it.  Use
:class:`~repro.api.builder.ScrutinizerBuilder` to swap in custom checkers,
answer sources, translation backends or batch selectors.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.claims.corpus import ClaimCorpus
from repro.config import ScrutinizerConfig
from repro.core.report import VerificationReport
from repro.core.session import VerificationSession
from repro.crowd.worker import SimulatedChecker
from repro.translation.translator import ClaimTranslator

if TYPE_CHECKING:  # pragma: no cover - the runtime import is deferred:
    # repro.core.__init__ imports this module while repro.api.service is
    # still initializing, so the facade resolves the service lazily.
    from repro.api.service import ProgressCallback, VerificationService


class Scrutinizer:
    """Mixed-initiative claim verification over an annotated corpus.

    Parameters
    ----------
    corpus:
        The annotated claim corpus (document, claims, ground truth, data).
        The ground truth drives the simulated crowd; a deployment against
        real experts would swap in custom :class:`~repro.api.protocols.Checker`
        and :class:`~repro.api.protocols.AnswerSource` implementations via
        :class:`~repro.api.builder.ScrutinizerBuilder`.
    config:
        System configuration; ``config.claim_ordering=False`` yields the
        *Sequential* baseline of the evaluation.
    translator:
        Optional pre-built translation backend (e.g. already bootstrapped on
        past checks).  When omitted a fresh translator is created and fitted
        on the corpus texts.
    checkers:
        Optional checkers; defaults to ``config.checker_count`` simulated
        workers with distinct seeds.
    """

    def __init__(
        self,
        corpus: ClaimCorpus,
        config: ScrutinizerConfig | None = None,
        translator: ClaimTranslator | None = None,
        checkers: Sequence[SimulatedChecker] | None = None,
        accuracy_sample_size: int = 60,
        *,
        service: VerificationService | None = None,
    ) -> None:
        if service is None:
            from repro.api.service import VerificationService

            service = VerificationService(
                corpus,
                config,
                translator=translator,
                checkers=checkers,
                accuracy_sample_size=accuracy_sample_size,
            )
        self._service = service
        self._last_session: VerificationSession | None = None

    @classmethod
    def from_service(cls, service: VerificationService) -> "Scrutinizer":
        """Wrap an already-assembled verification service."""
        return cls(service.corpus, service=service)

    # ------------------------------------------------------------------ #
    # component access (backwards-compatible surface)
    # ------------------------------------------------------------------ #
    @property
    def service(self) -> VerificationService:
        """The underlying incremental verification service."""
        return self._service

    @property
    def corpus(self) -> ClaimCorpus:
        return self._service.corpus

    @property
    def config(self) -> ScrutinizerConfig:
        return self._service.config

    @property
    def planner(self):
        return self._service.planner

    @property
    def oracle(self):
        """The answer source (the ground-truth oracle by default)."""
        return self._service.answer_source

    @property
    def translator(self):
        return self._service.translator

    @property
    def checkers(self):
        return self._service.checkers

    @property
    def last_session(self) -> VerificationSession | None:
        return self._last_session

    def on_batch_complete(self, callback: ProgressCallback) -> "Scrutinizer":
        """Register a progress callback invoked after every batch."""
        self._service.on_batch_complete(callback)
        return self

    # ------------------------------------------------------------------ #
    # bootstrap helpers
    # ------------------------------------------------------------------ #
    def warm_start(self, claim_ids: Sequence[str] | None = None) -> None:
        """Train the classifiers on previously checked claims.

        In the IEA deployment the annotations of past editions provide
        immediate training data; ``claim_ids`` restricts the warm start to a
        subset (defaults to the whole corpus).
        """
        self._service.warm_start(claim_ids)

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #
    def verify(
        self,
        claim_ids: Sequence[str] | None = None,
        max_batches: int | None = None,
        track_accuracy: bool = True,
    ) -> VerificationReport:
        """Verify claims and return the verification report.

        A thin wrapper over the service: start a fresh run, drive it to
        completion (or ``max_batches``), return the report.
        """
        service = self._service
        service.reset(track_accuracy=track_accuracy)
        report = service.run_to_completion(claim_ids, max_batches=max_batches)
        self._last_session = service.session
        return report
