"""The Scrutinizer system itself (Algorithm 1) and its baselines.

Layering contract: layer 9 of the enforced import DAG (peer of ``synth``) —
may import ``crowd``, ``pipeline``/``planning`` and everything below; never
``api``, ``runtime``, ``serving`` or ``gateway``. Enforced by reprolint;
see ``docs/architecture.md``.
"""

from repro.core.baselines import ManualBaseline, SYSTEM_PROFILES, SystemProfile
from repro.core.report import ClaimVerification, VerificationReport, seconds_to_weeks
from repro.core.scrutinizer import Scrutinizer
from repro.core.session import BatchRecord, VerificationSession

__all__ = [
    "BatchRecord",
    "ClaimVerification",
    "ManualBaseline",
    "SYSTEM_PROFILES",
    "Scrutinizer",
    "SystemProfile",
    "VerificationReport",
    "VerificationSession",
    "seconds_to_weeks",
]
