"""Verification reports — the output of the system.

The report maps every verified claim to the query that explains the
decision, flags claims judged incorrect together with suggested corrections,
and aggregates the effort statistics that the evaluation section of the
paper reports (total person-time, savings against the manual baseline,
accuracy of the aggregated verdicts).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.claims.corpus import ClaimCorpus

#: Working hours assumed when converting seconds to person-weeks
#: ("an eight hours work day and a five day week", Section 6.2).
SECONDS_PER_WORK_WEEK = 8 * 5 * 3600


def seconds_to_weeks(total_seconds: float, checkers: int = 1) -> float:
    """Convert accumulated person-seconds into elapsed weeks for a team."""
    if checkers < 1:
        raise ValueError("checkers must be at least 1")
    return total_seconds / (SECONDS_PER_WORK_WEEK * checkers)


@dataclass(frozen=True)
class ClaimVerification:
    """The verification outcome for a single claim."""

    claim_id: str
    verdict: bool | None
    verified_sql: str | None
    elapsed_seconds: float
    checker_votes: tuple[bool, ...] = ()
    suggested_value: float | None = None
    skipped: bool = False
    batch_index: int = 0

    @property
    def decided(self) -> bool:
        return self.verdict is not None and not self.skipped


@dataclass
class VerificationReport:
    """Aggregated outcome of a verification run."""

    system_name: str
    verifications: list[ClaimVerification] = field(default_factory=list)
    #: Time spent by the machine (planning, ILP, retraining), in seconds.
    computation_seconds: float = 0.0
    #: Classifier accuracy history: one entry per batch, keyed by series name.
    accuracy_history: list[Mapping[str, float]] = field(default_factory=list)
    checker_count: int = 1

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def add(self, verification: ClaimVerification) -> None:
        self.verifications.append(verification)

    def extend(self, verifications: Iterable[ClaimVerification]) -> None:
        self.verifications.extend(verifications)

    def verification_for(self, claim_id: str) -> ClaimVerification | None:
        for verification in self.verifications:
            if verification.claim_id == claim_id:
                return verification
        return None

    # ------------------------------------------------------------------ #
    # effort statistics
    # ------------------------------------------------------------------ #
    @property
    def claim_count(self) -> int:
        return len(self.verifications)

    @property
    def decided_count(self) -> int:
        return sum(1 for verification in self.verifications if verification.decided)

    @property
    def total_seconds(self) -> float:
        return sum(verification.elapsed_seconds for verification in self.verifications)

    @property
    def total_weeks(self) -> float:
        return seconds_to_weeks(self.total_seconds, checkers=self.checker_count)

    def cumulative_seconds(self) -> list[float]:
        """Accumulated verification time after each claim (Figure 7 series)."""
        series: list[float] = []
        running = 0.0
        for verification in self.verifications:
            running += verification.elapsed_seconds
            series.append(running)
        return series

    def savings_against(self, baseline: "VerificationReport") -> float:
        """Fractional time savings relative to another report."""
        if baseline.total_seconds == 0:
            return 0.0
        return 1.0 - self.total_seconds / baseline.total_seconds

    # ------------------------------------------------------------------ #
    # result quality
    # ------------------------------------------------------------------ #
    def verdict_accuracy(self, corpus: ClaimCorpus) -> float:
        """Fraction of decided claims whose verdict matches the ground truth."""
        decided = [verification for verification in self.verifications if verification.decided]
        if not decided:
            return 0.0
        hits = sum(
            1
            for verification in decided
            if verification.verdict == corpus.ground_truth(verification.claim_id).is_correct
        )
        return hits / len(decided)

    def incorrect_claims(self) -> list[ClaimVerification]:
        """Claims the crowd judged incorrect, with suggested corrections."""
        return [
            verification
            for verification in self.verifications
            if verification.decided and verification.verdict is False
        ]

    def average_classifier_accuracy(self, series: str = "average") -> float:
        """Mean of one accuracy series over the verification period (Table 2)."""
        values = [entry[series] for entry in self.accuracy_history if series in entry]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def max_classifier_accuracy(self, series: str = "average") -> float:
        values = [entry[series] for entry in self.accuracy_history if series in entry]
        if not values:
            return 0.0
        return max(values)

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, float]:
        return {
            "claims": float(self.claim_count),
            "decided": float(self.decided_count),
            "total_seconds": self.total_seconds,
            "total_weeks": self.total_weeks,
            "computation_minutes": self.computation_seconds / 60.0,
            "avg_accuracy": self.average_classifier_accuracy(),
            "max_accuracy": self.max_classifier_accuracy(),
        }

    def to_rows(self) -> list[dict[str, object]]:
        """Tabular form of the per-claim results (for export or inspection)."""
        return [
            {
                "claim_id": verification.claim_id,
                "verdict": verification.verdict,
                "sql": verification.verified_sql,
                "seconds": round(verification.elapsed_seconds, 2),
                "suggested_value": verification.suggested_value,
                "skipped": verification.skipped,
                "batch": verification.batch_index,
            }
            for verification in self.verifications
        ]
