"""Verification reports — the output of the system.

The report maps every verified claim to the query that explains the
decision, flags claims judged incorrect together with suggested corrections,
and aggregates the effort statistics that the evaluation section of the
paper reports (total person-time, savings against the manual baseline,
accuracy of the aggregated verdicts).
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.claims.corpus import ClaimCorpus
from repro.errors import ConfigurationError, SerializationError

#: Version stamp of the JSON report format; bump on breaking layout changes.
REPORT_FORMAT_VERSION = 1

#: Working hours assumed when converting seconds to person-weeks
#: ("an eight hours work day and a five day week", Section 6.2).
SECONDS_PER_WORK_WEEK = 8 * 5 * 3600


def seconds_to_weeks(total_seconds: float, checkers: int = 1) -> float:
    """Convert accumulated person-seconds into elapsed weeks for a team."""
    if checkers < 1:
        raise ConfigurationError("checkers must be at least 1")
    return total_seconds / (SECONDS_PER_WORK_WEEK * checkers)


@dataclass(frozen=True)
class ClaimVerification:
    """The verification outcome for a single claim."""

    claim_id: str
    verdict: bool | None
    verified_sql: str | None
    elapsed_seconds: float
    checker_votes: tuple[bool, ...] = ()
    suggested_value: float | None = None
    skipped: bool = False
    batch_index: int = 0

    @property
    def decided(self) -> bool:
        return self.verdict is not None and not self.skipped

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        """A JSON-compatible representation of this verification."""
        return {
            "claim_id": self.claim_id,
            "verdict": self.verdict,
            "verified_sql": self.verified_sql,
            "elapsed_seconds": self.elapsed_seconds,
            "checker_votes": list(self.checker_votes),
            "suggested_value": self.suggested_value,
            "skipped": self.skipped,
            "batch_index": self.batch_index,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ClaimVerification":
        """Rebuild a verification from :meth:`to_dict` output."""
        verdict = payload.get("verdict")
        if verdict is not None and not isinstance(verdict, bool):
            # A non-boolean verdict (e.g. "false" or 0 from a non-Python
            # producer) would silently count as decided/validated downstream.
            raise SerializationError(
                f"invalid ClaimVerification payload: verdict must be "
                f"true/false/null, got {verdict!r}"
            )
        verified_sql = payload.get("verified_sql")
        if verified_sql is not None and not isinstance(verified_sql, str):
            raise SerializationError(
                f"invalid ClaimVerification payload: verified_sql must be "
                f"a string or null, got {verified_sql!r}"
            )
        try:
            suggested_value = payload.get("suggested_value")
            return cls(
                claim_id=str(payload["claim_id"]),
                verdict=verdict,
                verified_sql=verified_sql,
                elapsed_seconds=float(payload["elapsed_seconds"]),  # type: ignore[arg-type]
                checker_votes=tuple(
                    bool(vote) for vote in payload.get("checker_votes", ())  # type: ignore[union-attr]
                ),
                suggested_value=None if suggested_value is None else float(suggested_value),  # type: ignore[arg-type]
                skipped=bool(payload.get("skipped", False)),
                batch_index=int(payload.get("batch_index", 0)),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(
                f"invalid ClaimVerification payload: {error}"
            ) from error


@dataclass
class VerificationReport:
    """Aggregated outcome of a verification run."""

    system_name: str
    verifications: list[ClaimVerification] = field(default_factory=list)
    #: Time spent by the machine (planning, ILP, retraining), in seconds.
    computation_seconds: float = 0.0
    #: Classifier accuracy history: one entry per batch, keyed by series name.
    accuracy_history: list[Mapping[str, float]] = field(default_factory=list)
    checker_count: int = 1

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    def add(self, verification: ClaimVerification) -> None:
        self.verifications.append(verification)

    def extend(self, verifications: Iterable[ClaimVerification]) -> None:
        self.verifications.extend(verifications)

    def verification_for(self, claim_id: str) -> ClaimVerification | None:
        for verification in self.verifications:
            if verification.claim_id == claim_id:
                return verification
        return None

    # ------------------------------------------------------------------ #
    # effort statistics
    # ------------------------------------------------------------------ #
    @property
    def claim_count(self) -> int:
        return len(self.verifications)

    @property
    def decided_count(self) -> int:
        return sum(1 for verification in self.verifications if verification.decided)

    @property
    def total_seconds(self) -> float:
        return sum(verification.elapsed_seconds for verification in self.verifications)

    @property
    def total_weeks(self) -> float:
        return seconds_to_weeks(self.total_seconds, checkers=self.checker_count)

    def cumulative_seconds(self) -> list[float]:
        """Accumulated verification time after each claim (Figure 7 series)."""
        series: list[float] = []
        running = 0.0
        for verification in self.verifications:
            running += verification.elapsed_seconds
            series.append(running)
        return series

    def savings_against(self, baseline: "VerificationReport") -> float:
        """Fractional time savings relative to another report."""
        if baseline.total_seconds == 0:
            return 0.0
        return 1.0 - self.total_seconds / baseline.total_seconds

    # ------------------------------------------------------------------ #
    # result quality
    # ------------------------------------------------------------------ #
    def verdict_accuracy(self, corpus: ClaimCorpus) -> float:
        """Fraction of decided claims whose verdict matches the ground truth."""
        decided = [verification for verification in self.verifications if verification.decided]
        if not decided:
            return 0.0
        hits = sum(
            1
            for verification in decided
            if verification.verdict == corpus.ground_truth(verification.claim_id).is_correct
        )
        return hits / len(decided)

    def incorrect_claims(self) -> list[ClaimVerification]:
        """Claims the crowd judged incorrect, with suggested corrections."""
        return [
            verification
            for verification in self.verifications
            if verification.decided and verification.verdict is False
        ]

    def average_classifier_accuracy(self, series: str = "average") -> float:
        """Mean of one accuracy series over the verification period (Table 2)."""
        values = [entry[series] for entry in self.accuracy_history if series in entry]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def max_classifier_accuracy(self, series: str = "average") -> float:
        values = [entry[series] for entry in self.accuracy_history if series in entry]
        if not values:
            return 0.0
        return max(values)

    # ------------------------------------------------------------------ #
    # (de)serialization — reports cross process boundaries as JSON
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        """A JSON-compatible representation of the whole report."""
        return {
            "format_version": REPORT_FORMAT_VERSION,
            "system_name": self.system_name,
            "checker_count": self.checker_count,
            "computation_seconds": self.computation_seconds,
            "accuracy_history": [dict(entry) for entry in self.accuracy_history],
            "verifications": [verification.to_dict() for verification in self.verifications],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "VerificationReport":
        """Rebuild a report from :meth:`to_dict` output."""
        version = payload.get("format_version")
        if version != REPORT_FORMAT_VERSION:
            raise SerializationError(
                f"unsupported report format version {version!r} "
                f"(expected {REPORT_FORMAT_VERSION})"
            )
        try:
            verifications = [
                ClaimVerification.from_dict(entry)
                for entry in payload.get("verifications", ())  # type: ignore[union-attr]
            ]
            report = cls(
                system_name=str(payload["system_name"]),
                verifications=verifications,
                computation_seconds=float(payload.get("computation_seconds", 0.0)),  # type: ignore[arg-type]
                accuracy_history=[
                    {str(series): float(value) for series, value in entry.items()}
                    for entry in payload.get("accuracy_history", ())  # type: ignore[union-attr]
                ],
                checker_count=int(payload.get("checker_count", 1)),  # type: ignore[arg-type]
            )
        except SerializationError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise SerializationError(
                f"invalid VerificationReport payload: {error}"
            ) from error
        return report

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the report to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "VerificationReport":
        """Deserialize a report from :meth:`to_json` output."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(f"report is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise SerializationError("report JSON must be an object")
        return cls.from_dict(payload)

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, float]:
        return {
            "claims": float(self.claim_count),
            "decided": float(self.decided_count),
            "total_seconds": self.total_seconds,
            "total_weeks": self.total_weeks,
            "computation_minutes": self.computation_seconds / 60.0,
            "avg_accuracy": self.average_classifier_accuracy(),
            "max_accuracy": self.max_classifier_accuracy(),
        }

    def to_rows(self) -> list[dict[str, object]]:
        """Tabular form of the per-claim results (for export or inspection)."""
        return [
            {
                "claim_id": verification.claim_id,
                "verdict": verification.verdict,
                "sql": verification.verified_sql,
                "seconds": round(verification.elapsed_seconds, 2),
                "suggested_value": verification.suggested_value,
                "skipped": verification.skipped,
                "batch": verification.batch_index,
            }
            for verification in self.verifications
        ]
