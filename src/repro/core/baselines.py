"""Baselines the paper compares against.

* ``ManualBaseline`` — the current IEA default: each claim is verified by
  hand with spreadsheets and databases, with no computational support.
* The *Sequential* baseline (Scrutinizer without claim ordering) is obtained
  by running :class:`~repro.core.scrutinizer.Scrutinizer` with
  ``config.as_sequential()``.
* :data:`SYSTEM_PROFILES` reproduces the qualitative system comparison of
  Table 3 (Scrutinizer vs AggChecker, BriQ and StatSearch).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.claims.corpus import ClaimCorpus
from repro.config import ScrutinizerConfig
from repro.core.report import ClaimVerification, VerificationReport
from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.timing import TimingModel
from repro.crowd.voting import majority_vote
from repro.crowd.worker import SimulatedChecker
from repro.errors import SimulationError


class ManualBaseline:
    """Verification without any computational support."""

    def __init__(
        self,
        corpus: ClaimCorpus,
        config: ScrutinizerConfig | None = None,
        checkers: Sequence[SimulatedChecker] | None = None,
    ) -> None:
        self.corpus = corpus
        self.config = config if config is not None else ScrutinizerConfig()
        self.oracle = GroundTruthOracle(corpus)
        timing = TimingModel(cost_model=self.config.cost_model, seed=self.config.seed)
        if checkers is not None:
            self.checkers = list(checkers)
        else:
            self.checkers = [
                SimulatedChecker(
                    checker_id=f"M{index + 1}",
                    oracle=self.oracle,
                    timing=timing,
                    seed=self.config.seed + 100 + index,
                )
                for index in range(self.config.checker_count)
            ]
        if not self.checkers:
            raise SimulationError("the manual baseline needs at least one checker")

    def verify(self, claim_ids: Sequence[str] | None = None) -> VerificationReport:
        """Verify every claim manually, in document order."""
        ids = list(claim_ids) if claim_ids is not None else list(self.corpus.claim_ids)
        report = VerificationReport(system_name="Manual", checker_count=self.config.checker_count)
        votes_needed = min(self.config.votes_per_claim, len(self.checkers))
        for position, claim_id in enumerate(ids):
            claim = self.corpus.claim(claim_id)
            responses = []
            for offset in range(votes_needed):
                checker = self.checkers[(position + offset) % len(self.checkers)]
                responses.append(checker.verify_manually(claim))
            votes = [bool(response.verdict) for response in responses if response.decided]
            report.add(
                ClaimVerification(
                    claim_id=claim_id,
                    verdict=majority_vote(votes) if votes else None,
                    verified_sql=self.corpus.ground_truth(claim_id).sql or None,
                    elapsed_seconds=sum(response.elapsed_seconds for response in responses),
                    checker_votes=tuple(votes),
                    skipped=not bool(votes),
                    batch_index=1,
                )
            )
        return report


@dataclass(frozen=True)
class SystemProfile:
    """Qualitative properties of a claim-verification system (Table 3)."""

    name: str
    task: str
    claim_scope: str
    claim_types: str
    query_model: str
    operation_count: str
    user_model: str
    dataset_scope: str


#: The rows of Table 3 of the paper.
SYSTEM_PROFILES: tuple[SystemProfile, ...] = (
    SystemProfile(
        name="Scrutinizer",
        task="check",
        claim_scope="n claims",
        claim_types="general",
        query_model="SPA",
        operation_count="100s ops",
        user_model="crowd",
        dataset_scope="corpus",
    ),
    SystemProfile(
        name="AggChecker",
        task="check",
        claim_scope="1 claim",
        claim_types="explicit",
        query_model="SPA",
        operation_count="9 ops",
        user_model="single",
        dataset_scope="single",
    ),
    SystemProfile(
        name="BriQ",
        task="check",
        claim_scope="1 claim",
        claim_types="explicit",
        query_model="SPA",
        operation_count="6 ops",
        user_model="single",
        dataset_scope="single",
    ),
    SystemProfile(
        name="StatSearch",
        task="search",
        claim_scope="1 claim",
        claim_types="explicit",
        query_model="SP",
        operation_count="-",
        user_model="single",
        dataset_scope="corpus",
    ),
)
