"""Sharded execution of the verification loop.

:class:`ShardedVerificationRunner` partitions the pending claims into K
shards by a *stable* key (CRC-32 of the claim id — identical across
processes, machines and Python invocations, unlike ``hash()``), drives one
:class:`~repro.api.service.VerificationService` per shard across a
``concurrent.futures`` pool, and merges the per-shard outcomes:

* **reports** are merged into one global
  :class:`~repro.core.report.VerificationReport` — verifications ordered by
  (batch round, shard), machine seconds summed, accuracy histories averaged
  per round across the shards still active in that round;
* **translator updates** are reconciled by gathering every shard's training
  examples and fitting one global translator on the union — the
  parameter-server pattern: shards learn locally, the merge step folds all
  labels into one model.

Shards are independent single-threaded loops, so the pool can be
process-backed (true parallelism), thread-backed (parallel numpy sections,
zero pickling) or inline (``"serial"``, deterministic debugging).  Even on
one core, K shards beat one: every batch re-predicts only its shard's
pending pool and retrains on its shard's examples, so the per-batch work
shrinks superlinearly as K grows — ``BENCH_runtime_scaling.json`` tracks
the effect.

Checkpointing: pass ``checkpoint_dir`` and every shard saves a
:class:`~repro.runtime.snapshot.ServiceSnapshot` (``shard-K.json``) after
each batch; :meth:`ShardedVerificationRunner.resume` picks up a crashed or
interrupted run from those files and finishes it, reaching the same
verified-claim set as an uninterrupted run.
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.api.service import VerificationService
from repro.claims.corpus import ClaimCorpus
from repro.claims.model import ClaimProperty
from repro.config import ScrutinizerConfig
from repro.core.report import VerificationReport
from repro.errors import ConfigurationError, SerializationError
from repro.runtime.pool import EXECUTOR_KINDS, WorkerPool
from repro.runtime.snapshot import ServiceSnapshot
from repro.translation.classifiers import TrainingExample
from repro.translation.translator import ClaimTranslator

__all__ = [
    "ShardResult",
    "ShardedRunResult",
    "ShardedVerificationRunner",
    "shard_claims",
]

_EXECUTORS = EXECUTOR_KINDS


def shard_key(claim_id: str) -> int:
    """Stable shard key of one claim id (CRC-32 of its UTF-8 bytes)."""
    return zlib.crc32(claim_id.encode("utf-8"))


def shard_claims(claim_ids: Sequence[str], shard_count: int) -> list[tuple[str, ...]]:
    """Partition claim ids into ``shard_count`` shards by stable key.

    Within a shard the input order (typically document order) is kept, so
    the Sequential baseline stays meaningful per shard.  Shards can be
    empty for tiny inputs; the runner skips those.
    """
    if shard_count < 1:
        raise ConfigurationError("shard_count must be at least 1")
    shards: list[list[str]] = [[] for _ in range(shard_count)]
    for claim_id in claim_ids:
        shards[shard_key(claim_id) % shard_count].append(claim_id)
    return [tuple(shard) for shard in shards]


# ---------------------------------------------------------------------- #
# per-shard work (module level so process pools can pickle it)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to run (or resume) one shard."""

    shard_index: int
    corpus: ClaimCorpus
    config: ScrutinizerConfig
    claim_ids: tuple[str, ...]
    system_name: str
    max_batches: int | None
    checkpoint_path: str | None
    checkpoint_every: int
    collect_translator_state: bool
    resume_snapshot: dict | None


@dataclass(frozen=True)
class _ShardOutcome:
    """Picklable result of one shard's run."""

    shard_index: int
    claim_ids: tuple[str, ...]
    report: dict
    batches_run: int
    wall_seconds: float
    translator_state: dict | None


def _execute_shard(task: _ShardTask) -> _ShardOutcome:
    """Run one shard's verification loop to completion (or its batch cap)."""
    started = time.perf_counter()
    if task.resume_snapshot is not None:
        from repro.api.builder import ScrutinizerBuilder

        snapshot = ServiceSnapshot.from_dict(task.resume_snapshot)
        service = ScrutinizerBuilder.from_snapshot(snapshot, task.corpus).build_service()
    else:
        service = VerificationService(
            task.corpus, task.config, system_name=task.system_name
        )
        service.submit(task.claim_ids)
    batches_this_call = 0
    while not service.is_complete:
        if task.max_batches is not None and batches_this_call >= task.max_batches:
            break
        service.run_batch()
        batches_this_call += 1
        if (
            task.checkpoint_path is not None
            and service.batches_run % max(1, task.checkpoint_every) == 0
        ):
            service.snapshot(metadata={"shard_index": task.shard_index}).save(
                task.checkpoint_path
            )
    if task.checkpoint_path is not None:
        # Always leave a final checkpoint behind, even when the loop above
        # stopped between checkpoint intervals.
        service.snapshot(metadata={"shard_index": task.shard_index}).save(
            task.checkpoint_path
        )
    report = service.report
    report.verifications.sort(key=lambda verification: verification.batch_index)
    translator_state = None
    if task.collect_translator_state:
        to_state = getattr(service.translator, "to_state", None)
        translator_state = to_state() if to_state else None
    return _ShardOutcome(
        shard_index=task.shard_index,
        claim_ids=task.claim_ids,
        report=report.to_dict(),
        batches_run=service.batches_run,
        wall_seconds=time.perf_counter() - started,
        translator_state=translator_state,
    )


# ---------------------------------------------------------------------- #
# results
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ShardResult:
    """Outcome of one shard of a sharded run."""

    shard_index: int
    claim_ids: tuple[str, ...]
    report: VerificationReport
    batches_run: int
    wall_seconds: float
    translator_state: dict | None = None

    @property
    def claim_count(self) -> int:
        return len(self.claim_ids)


@dataclass(frozen=True)
class ShardedRunResult:
    """Merged outcome of a sharded run."""

    report: VerificationReport
    shards: tuple[ShardResult, ...]
    shard_count: int
    executor: str
    wall_seconds: float
    merged_translator: ClaimTranslator | None = field(default=None, compare=False)

    @property
    def claim_count(self) -> int:
        return self.report.claim_count

    @property
    def claims_per_second(self) -> float:
        return self.claim_count / self.wall_seconds if self.wall_seconds > 0 else 0.0


# ---------------------------------------------------------------------- #
# the runner
# ---------------------------------------------------------------------- #
class ShardedVerificationRunner:
    """Drives K verification services over a worker pool and merges results.

    Parameters
    ----------
    corpus:
        The annotated claim corpus shared by every shard.
    config:
        System configuration applied to every shard (each shard keeps its
        own translator, session and RNG streams, all seeded identically —
        determinism per shard is preserved no matter the executor).
    shard_count:
        Number of shards K.
    executor:
        ``"thread"`` (default), ``"process"`` or ``"serial"``.
    max_workers:
        Pool width; defaults to the shard count.
    reconcile:
        Whether :meth:`run` fits the merged global translator from the
        union of per-shard training examples.
    checkpoint_dir:
        When given, every shard checkpoints a ``shard-K.json`` snapshot
        after each batch; :meth:`resume` restarts from those files.
    checkpoint_every:
        Checkpoint frequency in batches (default: every batch).
    pool:
        An existing :class:`~repro.runtime.pool.WorkerPool` to run shards
        on, shared with other runners or a serving layer.  When given, the
        runner does not own the pool (never closes it) and ``executor`` /
        ``max_workers`` are taken from the pool itself.
    """

    def __init__(
        self,
        corpus: ClaimCorpus,
        config: ScrutinizerConfig | None = None,
        *,
        shard_count: int = 4,
        executor: str = "thread",
        max_workers: int | None = None,
        reconcile: bool = True,
        checkpoint_dir: str | Path | None = None,
        checkpoint_every: int = 1,
        system_name: str | None = None,
        pool: WorkerPool | None = None,
    ) -> None:
        if shard_count < 1:
            raise ConfigurationError("shard_count must be at least 1")
        if executor not in _EXECUTORS:
            raise ConfigurationError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        if checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be at least 1")
        self.corpus = corpus
        self.config = config if config is not None else ScrutinizerConfig()
        self.shard_count = shard_count
        self.executor = executor if pool is None else pool.kind
        if pool is not None:
            # The shared pool's width governs actual concurrency; reflect
            # it (falling back to the shard count when the pool defers to
            # executor defaults) so the attribute matches behaviour.
            self.max_workers = (
                pool.max_workers if pool.max_workers is not None else shard_count
            )
        else:
            self.max_workers = max_workers if max_workers is not None else shard_count
        self._shared_pool = pool
        self.reconcile = reconcile
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        self.checkpoint_every = checkpoint_every
        self._system_name = (
            system_name
            if system_name is not None
            else ("Scrutinizer" if self.config.claim_ordering else "Sequential")
        )

    # ------------------------------------------------------------------ #
    # partitioning
    # ------------------------------------------------------------------ #
    def shard_assignments(
        self, claim_ids: Sequence[str] | None = None
    ) -> list[tuple[str, ...]]:
        """The stable claim partition this runner will execute."""
        ids = list(claim_ids) if claim_ids is not None else list(self.corpus.claim_ids)
        return shard_claims(ids, self.shard_count)

    def _checkpoint_path(self, shard_index: int) -> str | None:
        if self.checkpoint_dir is None:
            return None
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        return str(self.checkpoint_dir / f"shard-{shard_index}.json")

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        claim_ids: Sequence[str] | None = None,
        max_batches_per_shard: int | None = None,
    ) -> ShardedRunResult:
        """Verify the claims across all shards and merge the outcomes."""
        assignments = self.shard_assignments(claim_ids)
        tasks = [
            _ShardTask(
                shard_index=index,
                corpus=self.corpus,
                config=self.config,
                claim_ids=shard,
                system_name=f"{self._system_name}-shard{index}",
                max_batches=max_batches_per_shard,
                checkpoint_path=self._checkpoint_path(index),
                checkpoint_every=self.checkpoint_every,
                collect_translator_state=self.reconcile,
                resume_snapshot=None,
            )
            for index, shard in enumerate(assignments)
            if shard
        ]
        return self._execute(tasks)

    def resume(
        self,
        claim_ids: Sequence[str] | None = None,
        max_batches_per_shard: int | None = None,
    ) -> ShardedRunResult:
        """Continue an interrupted sharded run from its checkpoint files.

        ``claim_ids`` must match the original :meth:`run` call (defaults
        to the whole corpus, like :meth:`run`): the stable partition then
        reproduces the original shard assignment.  Three cases per shard:

        * a snapshot showing a *completed* shard is folded straight into
          the merge — no service rebuild, no re-execution;
        * a snapshot showing an *in-progress* shard resumes from its
          restored state (byte-identically to never having stopped);
        * a shard with *no snapshot at all* — the run crashed before its
          first checkpoint — is re-run from scratch, which is the same
          thing deterministically, so no claim is ever silently dropped.

        Resume therefore reaches exactly the verified-claim set an
        uninterrupted run would have reached.
        """
        if self.checkpoint_dir is None:
            raise ConfigurationError("resume requires a checkpoint_dir")
        assignments = self.shard_assignments(claim_ids)
        tasks: list[_ShardTask] = []
        completed: list[ShardResult] = []
        snapshots_found = 0
        for index, shard in enumerate(assignments):
            path = self.checkpoint_dir / f"shard-{index}.json"
            snapshot = ServiceSnapshot.load(path) if path.exists() else None
            if snapshot is not None:
                snapshots_found += 1
                if snapshot.is_complete:
                    completed.append(
                        ShardResult(
                            shard_index=index,
                            claim_ids=shard,
                            report=VerificationReport.from_dict(snapshot.report)
                            if snapshot.report is not None
                            else VerificationReport(
                                system_name=f"{self._system_name}-shard{index}",
                                checker_count=self.config.checker_count,
                            ),
                            batches_run=snapshot.batch_index,
                            wall_seconds=0.0,
                            translator_state=snapshot.translator
                            if self.reconcile
                            else None,
                        )
                    )
                    continue
            elif not shard:
                continue
            tasks.append(
                _ShardTask(
                    shard_index=index,
                    corpus=self.corpus,
                    config=self.config,
                    claim_ids=shard,
                    system_name=f"{self._system_name}-shard{index}",
                    max_batches=max_batches_per_shard,
                    checkpoint_path=str(path),
                    checkpoint_every=self.checkpoint_every,
                    collect_translator_state=self.reconcile,
                    resume_snapshot=snapshot.to_dict() if snapshot is not None else None,
                )
            )
        if snapshots_found == 0:
            raise SerializationError(
                f"no shard checkpoints found in {self.checkpoint_dir}"
            )
        return self._execute(tasks, precompleted=completed)

    def _execute(
        self,
        tasks: list[_ShardTask],
        precompleted: Sequence[ShardResult] = (),
    ) -> ShardedRunResult:
        started = time.perf_counter()
        # Shards fan out through the same submit/drain vocabulary the
        # serving scheduler steals work with; the merge below needs every
        # shard, so the runner drains in submission order (a barrier).
        if not tasks:
            outcomes: list[_ShardOutcome] = []
        elif self._shared_pool is not None:
            outcomes = self._shared_pool.drain(
                [self._shared_pool.submit(_execute_shard, task) for task in tasks]
            )
        else:
            with WorkerPool(
                self.executor, max_workers=min(self.max_workers, len(tasks))
            ) as pool:
                outcomes = pool.drain(
                    [pool.submit(_execute_shard, task) for task in tasks]
                )
        executed = [
            ShardResult(
                shard_index=outcome.shard_index,
                claim_ids=outcome.claim_ids,
                report=VerificationReport.from_dict(outcome.report),
                batches_run=outcome.batches_run,
                wall_seconds=outcome.wall_seconds,
                translator_state=outcome.translator_state,
            )
            for outcome in outcomes
        ]
        shards = tuple(
            sorted(
                executed + list(precompleted),
                key=lambda shard: shard.shard_index,
            )
        )
        merged = merge_shard_reports(
            shards,
            system_name=self._system_name,
            checker_count=self.config.checker_count,
        )
        merged_translator = None
        if self.reconcile:
            merged_translator = reconcile_translator_states(
                self.corpus,
                self.config,
                [shard.translator_state for shard in shards],
            )
        return ShardedRunResult(
            report=merged,
            shards=shards,
            shard_count=self.shard_count,
            executor=self.executor,
            wall_seconds=time.perf_counter() - started,
            merged_translator=merged_translator,
        )


# ---------------------------------------------------------------------- #
# merge semantics
# ---------------------------------------------------------------------- #
def merge_shard_reports(
    shards: Sequence[ShardResult],
    system_name: str,
    checker_count: int,
) -> VerificationReport:
    """Fold per-shard reports into one global report.

    * Verifications are ordered by (batch round, shard index): round 1 of
      every shard, then round 2, and so on — the order the claims would
      have been decided in if the shards ran in lockstep.  Batch indices
      keep their per-shard values.
    * ``computation_seconds`` (planning + retraining machine time) is the
      sum over shards.
    * ``accuracy_history[i]`` averages, per series, the round-``i`` entries
      of every shard that was still running at round ``i``.
    """
    merged = VerificationReport(system_name=system_name, checker_count=checker_count)
    ordered: list[tuple[int, int, object]] = []
    for shard in shards:
        merged.computation_seconds += shard.report.computation_seconds
        for verification in shard.report.verifications:
            ordered.append((verification.batch_index, shard.shard_index, verification))
    ordered.sort(key=lambda item: (item[0], item[1]))
    for _, _, verification in ordered:
        merged.add(verification)
    rounds = max((len(shard.report.accuracy_history) for shard in shards), default=0)
    for round_index in range(rounds):
        entries = [
            shard.report.accuracy_history[round_index]
            for shard in shards
            if round_index < len(shard.report.accuracy_history)
        ]
        series: dict[str, float] = {}
        for name in sorted({name for entry in entries for name in entry}):
            values = [entry[name] for entry in entries if name in entry]
            series[name] = sum(values) / len(values)
        merged.accuracy_history.append(series)
    return merged


def reconcile_translator_states(
    corpus: ClaimCorpus,
    config: ScrutinizerConfig,
    shard_states: Sequence[Mapping[str, object] | None],
) -> ClaimTranslator | None:
    """Fit one global translator from the union of per-shard examples.

    Each shard trained on its own verified claims; the reconcile step
    gathers every (claim id, labels) pair across shards — later shards win
    on conflicts, which cannot happen for disjoint shards — and fits a
    fresh translator on the union in corpus order.  Returns ``None`` when
    no shard produced any training example.
    """
    labels_by_claim: dict[str, Mapping[str, str]] = {}
    for state in shard_states:
        if not state:
            continue
        suite_state = state.get("suite")
        if not isinstance(suite_state, Mapping):
            continue
        for entry in suite_state.get("examples", ()):  # type: ignore[union-attr]
            labels_by_claim[str(entry["claim_id"])] = entry["labels"]
    if not labels_by_claim:
        return None
    translator = ClaimTranslator(corpus.database, config=config.translation)
    all_claims = [corpus.claim(claim_id) for claim_id in corpus.claim_ids]
    translator.bootstrap(all_claims, fit_features_only=True)
    examples = [
        TrainingExample(
            claim=corpus.claim(claim_id),
            labels={
                ClaimProperty(claim_property): str(label)
                for claim_property, label in labels_by_claim[claim_id].items()
            },
        )
        for claim_id in corpus.claim_ids
        if claim_id in labels_by_claim
    ]
    translator.suite.fit(examples)
    return translator
