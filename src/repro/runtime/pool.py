"""Reusable worker pools shared by the sharded runner and the server.

Every scale-out component of the runtime fans work out over the same three
executor kinds — ``"serial"`` (inline, deterministic debugging),
``"thread"`` (parallel numpy sections, zero pickling) and ``"process"``
(true parallelism for picklable tasks).  :class:`WorkerPool` wraps that
choice once so the :class:`~repro.runtime.sharding.ShardedVerificationRunner`
and the :class:`~repro.serving.server.VerificationServer` can share a
single pool instead of each spinning up their own executors per call:
the server hands its pool to embedded runners, and repeated scheduling
rounds reuse the same threads instead of paying pool startup per round.

The pool is lazy (no executor exists until the first :meth:`map`) and
reusable (``close()`` only happens explicitly or via the context manager),
which is what a long-lived serving process needs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TypeVar

from repro.errors import ConfigurationError

__all__ = ["EXECUTOR_KINDS", "WorkerPool"]

#: The executor kinds every runtime component understands.
EXECUTOR_KINDS = ("serial", "thread", "process")

_TaskT = TypeVar("_TaskT")
_ResultT = TypeVar("_ResultT")


class WorkerPool:
    """A lazily created, reusable serial/thread/process executor facade.

    Parameters
    ----------
    kind:
        ``"serial"``, ``"thread"`` or ``"process"``.
    max_workers:
        Pool width for the threaded/process kinds; ``None`` defers to
        ``concurrent.futures`` defaults.  Ignored by ``"serial"``.
    """

    def __init__(self, kind: str = "thread", max_workers: int | None = None) -> None:
        if kind not in EXECUTOR_KINDS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTOR_KINDS}, got {kind!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        self.kind = kind
        self.max_workers = max_workers
        self._executor: Executor | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def is_open(self) -> bool:
        return not self._closed

    def _ensure_executor(self) -> Executor:
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")
        if self._executor is None:
            pool_cls = ProcessPoolExecutor if self.kind == "process" else ThreadPoolExecutor
            self._executor = pool_cls(max_workers=self.max_workers)
        return self._executor

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def map(
        self,
        fn: Callable[[_TaskT], _ResultT],
        tasks: Sequence[_TaskT] | Iterable[_TaskT],
    ) -> list[_ResultT]:
        """Apply ``fn`` to every task, preserving input order.

        A single task (or the serial kind) runs inline — no executor is
        ever created for work that cannot overlap, so one-shard runs and
        single-tenant rounds stay on the deterministic fast path.
        """
        items = list(tasks)
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")
        if self.kind == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_executor().map(fn, items))
