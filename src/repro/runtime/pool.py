"""Reusable worker pools shared by the sharded runner and the server.

Every scale-out component of the runtime fans work out over the same three
executor kinds — ``"serial"`` (inline, deterministic debugging),
``"thread"`` (parallel numpy sections, zero pickling) and ``"process"``
(true parallelism for picklable tasks).  :class:`WorkerPool` wraps that
choice once so the :class:`~repro.runtime.sharding.ShardedVerificationRunner`
and the :class:`~repro.serving.server.VerificationServer` can share a
single pool instead of each spinning up their own executors per call:
the server hands its pool to embedded runners, and repeated scheduling
rounds reuse the same threads instead of paying pool startup per round.

The pool is lazy (no executor exists until the first task) and reusable
(``close()`` only happens explicitly or via the context manager), which is
what a long-lived serving process needs.

Two consumption styles are supported:

* :meth:`map` — the barrier style: every task completes before any result
  is seen.  Right for shard fan-out where the merge needs all shards.
* :meth:`submit` / :meth:`wait_any` / :meth:`drain` — the steal-friendly
  style: callers observe completions *as they happen* and can hand freed
  workers new tasks immediately.  The serving scheduler uses this to keep
  the pool saturated instead of waiting on a round barrier; the sharded
  runner uses :meth:`submit` + :meth:`drain` so both components share one
  dispatch vocabulary.  On the ``"serial"`` kind :meth:`submit` runs the
  task inline and returns an already-resolved future, so single-threaded
  runs stay deterministic.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import TypeVar

from repro.errors import ConfigurationError

__all__ = ["EXECUTOR_KINDS", "WorkerPool"]

#: The executor kinds every runtime component understands.
EXECUTOR_KINDS = ("serial", "thread", "process")

_TaskT = TypeVar("_TaskT")
_ResultT = TypeVar("_ResultT")


class WorkerPool:
    """A lazily created, reusable serial/thread/process executor facade.

    Parameters
    ----------
    kind:
        ``"serial"``, ``"thread"`` or ``"process"``.
    max_workers:
        Pool width for the threaded/process kinds; ``None`` defers to
        ``concurrent.futures`` defaults.  Ignored by ``"serial"``.
    """

    def __init__(self, kind: str = "thread", max_workers: int | None = None) -> None:
        if kind not in EXECUTOR_KINDS:
            raise ConfigurationError(
                f"executor must be one of {EXECUTOR_KINDS}, got {kind!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1")
        self.kind = kind
        self.max_workers = max_workers
        self._executor: Executor | None = None
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def is_open(self) -> bool:
        return not self._closed

    @property
    def width(self) -> int | None:
        """How many tasks can genuinely overlap (1 for serial, ``None``
        when the executor default decides)."""
        if self.kind == "serial":
            return 1
        return self.max_workers

    def _ensure_executor(self) -> Executor:
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")
        if self._executor is None:
            pool_cls = ProcessPoolExecutor if self.kind == "process" else ThreadPoolExecutor
            self._executor = pool_cls(max_workers=self.max_workers)
        return self._executor

    def close(self) -> None:
        """Shut the underlying executor down (idempotent)."""
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def submit(
        self, fn: Callable[..., _ResultT], /, *args: object
    ) -> "Future[_ResultT]":
        """Dispatch one task; returns its future.

        On the ``"serial"`` kind the task runs inline on the caller's
        thread and the returned future is already resolved — completion
        order equals submission order, so serial scheduling stays fully
        deterministic while consumers keep one code path.
        """
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")
        if self.kind == "serial":
            future: Future[_ResultT] = Future()
            try:
                future.set_result(fn(*args))
            except BaseException as error:  # noqa: BLE001 - mirrored to future
                future.set_exception(error)
            return future
        return self._ensure_executor().submit(fn, *args)

    @staticmethod
    def wait_any(
        futures: Iterable["Future[_ResultT]"],
    ) -> tuple[set["Future[_ResultT]"], set["Future[_ResultT]"]]:
        """Block until at least one future completes: ``(done, pending)``.

        The steal primitive: a scheduler waits on its in-flight set, books
        whatever finished, and immediately hands the freed workers new
        work.  Serial futures are born resolved, so this never blocks on
        the serial kind.
        """
        pending = list(futures)
        if not pending:
            return set(), set()
        done, not_done = wait(pending, return_when=FIRST_COMPLETED)
        return set(done), set(not_done)

    @staticmethod
    def drain(futures: Sequence["Future[_ResultT]"]) -> list[_ResultT]:
        """Results of ``futures`` in submission order (blocking).

        The barrier-style companion of :meth:`submit`: fan out with
        ``submit``, then ``drain`` when every result is needed together
        (the sharded runner's merge step).  Exceptions re-raise here, on
        the caller's thread.
        """
        return [future.result() for future in futures]

    def map(
        self,
        fn: Callable[[_TaskT], _ResultT],
        tasks: Sequence[_TaskT] | Iterable[_TaskT],
    ) -> list[_ResultT]:
        """Apply ``fn`` to every task, preserving input order.

        A single task (or the serial kind) runs inline — no executor is
        ever created for work that cannot overlap, so one-shard runs and
        single-tenant rounds stay on the deterministic fast path.
        """
        items = list(tasks)
        if self._closed:
            raise ConfigurationError("the worker pool has been closed")
        if self.kind == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        return self.drain([self.submit(fn, item) for item in items])
