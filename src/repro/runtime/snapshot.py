"""Versioned checkpoints of a running verification service.

A :class:`ServiceSnapshot` captures everything a
:class:`~repro.api.service.VerificationService` needs to continue a run
after a crash or restart, as plain JSON:

* the system configuration (so a resume cannot silently run under
  different costs or batching),
* the session (pending claim order, per-claim verifications, batch
  records) and the report accumulated so far (including the machine-time
  accounting of the planner and retrainer),
* the translation backend via its ``to_state()`` hook — fitted featurizer
  corpus, classifier weights, training examples, vocabulary-refit
  accounting,
* every random stream: the service's accuracy-sampling generator, the
  shared timing model and each simulated checker's behavioural RNG.

Because the model hooks round-trip float64 exactly and the RNG streams are
restored bit for bit, a resumed run selects the same batches and produces
the same predictions and verdicts as the uninterrupted run — asserted by
the snapshot tests.

Schema versioning: ``schema_version`` is stamped into every payload and
checked on load; loading a payload from a different schema raises
:class:`~repro.errors.SerializationError` instead of guessing.
"""

from __future__ import annotations

import json
import zlib
from collections.abc import Mapping
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.config import (
    BatchingConfig,
    CostModelConfig,
    ScrutinizerConfig,
    TranslationConfig,
)
from repro.core.report import ClaimVerification, VerificationReport
from repro.core.session import BatchRecord, VerificationSession
from repro.errors import SerializationError

if TYPE_CHECKING:  # pragma: no cover - type-only import (cycle at runtime)
    from repro.api.service import VerificationService

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "ServiceSnapshot",
    "SnapshotStore",
    "scrutinizer_config_from_dict",
    "scrutinizer_config_to_dict",
]

#: Version stamp of the snapshot JSON layout; bump on breaking changes.
SNAPSHOT_SCHEMA_VERSION = 1


# ---------------------------------------------------------------------- #
# configuration (de)serialization
# ---------------------------------------------------------------------- #
def scrutinizer_config_to_dict(config: ScrutinizerConfig) -> dict[str, object]:
    """JSON-compatible form of a :class:`~repro.config.ScrutinizerConfig`."""
    from dataclasses import asdict

    return asdict(config)


def scrutinizer_config_from_dict(payload: Mapping[str, object]) -> ScrutinizerConfig:
    """Rebuild a :class:`~repro.config.ScrutinizerConfig` from its dict form."""
    try:
        return ScrutinizerConfig(
            cost_model=CostModelConfig(**payload["cost_model"]),  # type: ignore[arg-type]
            batching=BatchingConfig(**payload["batching"]),  # type: ignore[arg-type]
            translation=TranslationConfig(**payload["translation"]),  # type: ignore[arg-type]
            checker_count=int(payload["checker_count"]),  # type: ignore[arg-type]
            votes_per_claim=int(payload["votes_per_claim"]),  # type: ignore[arg-type]
            options_per_property=(
                None
                if payload.get("options_per_property") is None
                else int(payload["options_per_property"])  # type: ignore[arg-type]
            ),
            claim_ordering=bool(payload["claim_ordering"]),
            seed=int(payload["seed"]),  # type: ignore[arg-type]
        )
    except (KeyError, TypeError, ValueError) as error:
        raise SerializationError(f"invalid config payload: {error}") from error


# ---------------------------------------------------------------------- #
# the snapshot
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ServiceSnapshot:
    """One checkpoint of a verification service, as JSON-compatible data."""

    config: dict[str, object]
    system_name: str
    batch_index: int
    track_accuracy: bool
    accuracy_sample_size: int
    #: ``numpy`` bit-generator state of the accuracy-sampling stream.
    rng_state: dict | None
    #: Bit-generator state of the shared :class:`~repro.crowd.timing.TimingModel`.
    timing_rng_state: dict | None
    #: Per-checker behavioural state (``None`` for checkers without hooks).
    checkers: tuple[dict | None, ...]
    #: ``{"pending": [...], "verifications": [...], "batches": [...]}`` or
    #: ``None`` when nothing was ever submitted.
    session: dict[str, object] | None
    report: dict[str, object] | None
    translator: dict[str, object] | None
    schema_version: int = SNAPSHOT_SCHEMA_VERSION
    #: Free-form caller annotations (the CLI stores its workload recipe
    #: here so ``resume`` can regenerate the corpus deterministically).
    metadata: dict[str, object] = field(default_factory=dict)
    #: When the service's feature store runs on an out-of-core backend,
    #: the backend's manifest (see
    #: :meth:`repro.store.outofcore.OutOfCoreClaimStore.manifest`) — the
    #: on-disk layout description a rehydrator reattaches from.  The
    #: snapshot records *this* instead of any feature bytes: the matrix
    #: lives in the store's memmap files, not in the checkpoint.  ``None``
    #: for the default all-in-RAM backend (features re-derive from the
    #: translator state), and omitted from the JSON payload in that case,
    #: so pre-existing snapshots round-trip unchanged at schema version 1.
    store_manifest: dict[str, object] | None = None

    # ------------------------------------------------------------------ #
    # capture
    # ------------------------------------------------------------------ #
    @classmethod
    def capture(
        cls, service: "VerificationService", metadata: Mapping[str, object] | None = None
    ) -> "ServiceSnapshot":
        """Snapshot the current state of ``service``.

        The capture is read-only: no RNG is advanced, no model retrained.
        Components without state hooks (custom checkers or translation
        backends) are recorded as ``None`` and come back as freshly built
        instances on restore.
        """
        session_state: dict[str, object] | None = None
        if service.session is not None:
            session_state = {
                "pending": list(service.session.pending_claim_ids),
                "verifications": [
                    verification.to_dict()
                    for verification in service.session.verifications
                ],
                "batches": [record.to_dict() for record in service.session.batches],
            }
        translator_to_state = getattr(service.translator, "to_state", None)
        suite = getattr(service.translator, "suite", None)
        feature_store = getattr(suite, "feature_store", None)
        store_backend = getattr(feature_store, "backend", None)
        manifest_hook = getattr(store_backend, "manifest", None)
        store_manifest = manifest_hook() if callable(manifest_hook) else None
        checker_states: list[dict | None] = []
        for checker in service.checkers:
            checker_to_state = getattr(checker, "to_state", None)
            checker_states.append(checker_to_state() if checker_to_state else None)
        return cls(
            config=scrutinizer_config_to_dict(service.config),
            system_name=service.system_name,
            batch_index=service.batches_run,
            track_accuracy=service.track_accuracy,
            accuracy_sample_size=service.accuracy_sample_size,
            rng_state=service.get_rng_state(),
            timing_rng_state=service.timing.get_rng_state(),
            checkers=tuple(checker_states),
            session=session_state,
            report=service.report.to_dict(),
            translator=translator_to_state() if translator_to_state else None,
            metadata=dict(metadata) if metadata is not None else {},
            store_manifest=store_manifest,
        )

    # ------------------------------------------------------------------ #
    # restore
    # ------------------------------------------------------------------ #
    def restore_into(
        self, service: "VerificationService", restore_translator: bool = True
    ) -> "VerificationService":
        """Apply this snapshot's mutable state onto a freshly built service.

        The service must have been built against the same corpus and an
        equivalent configuration — :meth:`ScrutinizerBuilder.from_snapshot
        <repro.api.builder.ScrutinizerBuilder.from_snapshot>` arranges both.
        ``restore_translator=False`` skips the translation backend (used
        when the builder already constructed it from the snapshot state).
        """
        if restore_translator and self.translator is not None:
            from repro.translation.translator import ClaimTranslator

            service.translator = ClaimTranslator.from_state(
                service.corpus.database, self.translator, service.corpus.claim
            )
        session = None
        if self.session is not None:
            session = VerificationSession.from_state(
                pending=[str(claim_id) for claim_id in self.session["pending"]],
                verifications=[
                    ClaimVerification.from_dict(entry)
                    for entry in self.session["verifications"]
                ],
                batches=[
                    BatchRecord.from_dict(entry) for entry in self.session["batches"]
                ],
            )
        report = (
            VerificationReport.from_dict(self.report) if self.report is not None else None
        )
        service.restore_run_state(
            system_name=self.system_name,
            batch_index=self.batch_index,
            track_accuracy=self.track_accuracy,
            session=session,
            report=report,
            rng_state=self.rng_state,
            timing_rng_state=self.timing_rng_state,
            checker_states=self.checkers,
        )
        return service

    # ------------------------------------------------------------------ #
    # convenience views
    # ------------------------------------------------------------------ #
    @property
    def pending_count(self) -> int:
        return len(self.session["pending"]) if self.session is not None else 0

    @property
    def verified_count(self) -> int:
        return len(self.session["verifications"]) if self.session is not None else 0

    @property
    def is_complete(self) -> bool:
        return self.pending_count == 0

    @property
    def verdicts(self) -> dict[str, bool | None]:
        """``{claim_id: verdict}`` for every verification in the session.

        The gateway's offline ``replay``/``status`` verbs use this to
        build verdict maps from passivated tenants without rehydrating a
        full service.
        """
        if self.session is None:
            return {}
        return {
            str(entry["claim_id"]): entry.get("verdict")  # type: ignore[union-attr]
            for entry in self.session["verifications"]  # type: ignore[index]
        }

    # ------------------------------------------------------------------ #
    # (de)serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "schema_version": self.schema_version,
            "config": self.config,
            "system_name": self.system_name,
            "batch_index": self.batch_index,
            "track_accuracy": self.track_accuracy,
            "accuracy_sample_size": self.accuracy_sample_size,
            "rng_state": self.rng_state,
            "timing_rng_state": self.timing_rng_state,
            "checkers": list(self.checkers),
            "session": self.session,
            "report": self.report,
            "translator": self.translator,
            "metadata": self.metadata,
        }
        if self.store_manifest is not None:
            payload["store_manifest"] = self.store_manifest
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ServiceSnapshot":
        version = payload.get("schema_version")
        if version != SNAPSHOT_SCHEMA_VERSION:
            raise SerializationError(
                f"unsupported snapshot schema version {version!r} "
                f"(expected {SNAPSHOT_SCHEMA_VERSION})"
            )
        try:
            return cls(
                config=dict(payload["config"]),  # type: ignore[arg-type]
                system_name=str(payload["system_name"]),
                batch_index=int(payload["batch_index"]),  # type: ignore[arg-type]
                track_accuracy=bool(payload["track_accuracy"]),
                accuracy_sample_size=int(payload["accuracy_sample_size"]),  # type: ignore[arg-type]
                rng_state=payload.get("rng_state"),  # type: ignore[arg-type]
                timing_rng_state=payload.get("timing_rng_state"),  # type: ignore[arg-type]
                checkers=tuple(payload.get("checkers", ())),  # type: ignore[arg-type]
                session=payload.get("session"),  # type: ignore[arg-type]
                report=payload.get("report"),  # type: ignore[arg-type]
                translator=payload.get("translator"),  # type: ignore[arg-type]
                metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
                store_manifest=payload.get("store_manifest"),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SerializationError(f"invalid snapshot payload: {error}") from error

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ServiceSnapshot":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SerializationError(f"snapshot is not valid JSON: {error}") from error
        if not isinstance(payload, dict):
            raise SerializationError("snapshot JSON must be an object")
        return cls.from_dict(payload)

    def save(self, path: str | Path) -> Path:
        """Write the snapshot to ``path`` atomically (write + rename).

        A checkpoint interrupted mid-write must not destroy the previous
        checkpoint — the whole point is surviving crashes.
        """
        target = Path(path)
        scratch = target.with_name(target.name + ".tmp")
        scratch.write_text(self.to_json(indent=2) + "\n", encoding="utf-8")
        scratch.replace(target)
        return target

    @classmethod
    def load(cls, path: str | Path) -> "ServiceSnapshot":
        source = Path(path)
        try:
            text = source.read_text(encoding="utf-8")
        except OSError as error:
            raise SerializationError(
                f"cannot read snapshot from {source}: {error}"
            ) from error
        return cls.from_json(text)


# ---------------------------------------------------------------------- #
# keyed snapshot storage
# ---------------------------------------------------------------------- #
class SnapshotStore:
    """A directory of snapshots keyed by name (one JSON file per key).

    The serving layer passivates idle tenant sessions through a store —
    ``save`` on eviction, ``load`` on the next request — and the runtime
    CLI inspects stores read-only.  Keys are mangled into safe file names
    (anything outside ``[A-Za-z0-9._-]`` becomes ``_`` plus a stable CRC-32
    suffix), so arbitrary tenant ids never escape the directory.
    """

    _SUFFIX = ".json"

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def _file_name(self, key: str) -> str:
        if not key:
            raise SerializationError("snapshot keys must be non-empty")
        safe = "".join(
            char if char.isalnum() or char in "._-" else "_" for char in key
        )
        if safe != key:
            safe = f"{safe}-{zlib.crc32(key.encode('utf-8')):08x}"
        return safe + self._SUFFIX

    def path(self, key: str) -> Path:
        """Where the snapshot for ``key`` lives (whether or not it exists)."""
        return self.directory / self._file_name(key)

    def exists(self, key: str) -> bool:
        return self.path(key).exists()

    def items(self) -> tuple[tuple[str, ServiceSnapshot], ...]:
        """Every stored ``(key, snapshot)`` pair, sorted by file name.

        Each snapshot is loaded exactly once — callers that need both the
        keys and the contents (restart adoption, status surfaces) should
        use this instead of :meth:`keys` followed by per-key loads.  Keys
        come from each file's recorded metadata, falling back to the file
        stem for snapshots that predate key stamping; unreadable files are
        skipped.
        """
        if not self.directory.is_dir():
            return ()
        pairs = []
        for entry in sorted(self.directory.glob(f"*{self._SUFFIX}")):
            try:
                snapshot = ServiceSnapshot.load(entry)
            except SerializationError:
                continue
            pairs.append((str(snapshot.metadata.get("store_key", entry.stem)), snapshot))
        return tuple(pairs)

    def keys(self) -> tuple[str, ...]:
        """Stored keys (see :meth:`items` for key recovery rules)."""
        return tuple(key for key, _ in self.items())

    def save(self, key: str, snapshot: ServiceSnapshot) -> Path:
        """Persist ``snapshot`` under ``key`` (atomic write-then-rename)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        stamped = replace(
            snapshot, metadata={**snapshot.metadata, "store_key": key}
        )
        return stamped.save(self.path(key))

    def load(self, key: str) -> ServiceSnapshot:
        """Load the snapshot stored under ``key``.

        Raises :class:`~repro.errors.SerializationError` when the key has
        never been saved (or its file is unreadable), matching
        :meth:`ServiceSnapshot.load`.
        """
        return ServiceSnapshot.load(self.path(key))

    def delete(self, key: str) -> bool:
        """Remove the snapshot for ``key``; ``True`` when one existed."""
        target = self.path(key)
        if not target.exists():
            return False
        target.unlink()
        return True
