"""Scale-out runtime: sharded execution and checkpoint/restore.

The verification loop of :mod:`repro.api` is a long-running, stateful
process — crowd batches arrive over hours, and classifier state accumulates
across every batch.  This package makes that loop operable:

* :mod:`repro.runtime.snapshot` — :class:`ServiceSnapshot`, a versioned
  JSON checkpoint of a :class:`~repro.api.service.VerificationService`
  (claim statuses, classifier weights and vocabulary, RNG streams,
  planner/report accounting).  ``service.snapshot()`` captures one,
  ``ScrutinizerBuilder.from_snapshot(...)`` restores it; a restored run
  continues byte-identically to an uninterrupted one.
* :mod:`repro.runtime.sharding` — :class:`ShardedVerificationRunner`,
  which partitions pending claims into K shards by a stable key, drives K
  services across a ``concurrent.futures`` pool (threads, processes, or
  inline), merges per-shard reports into a global one and reconciles the
  per-shard translator updates.
* :mod:`repro.runtime.pool` — :class:`WorkerPool`, the reusable
  serial/thread/process executor facade shared by the sharded runner and
  the multi-tenant :mod:`repro.serving` layer.
* :mod:`repro.runtime.cli` — ``python -m repro.runtime`` with ``run`` /
  ``resume`` / ``status`` verbs over synthetic workloads.

Layering contract: layer 11 of the enforced import DAG (peer of
``simulation``) — may import ``api`` and everything below it; never
``serving`` or ``gateway``. Enforced by reprolint; see
``docs/architecture.md``.
"""

from repro.runtime.pool import EXECUTOR_KINDS, WorkerPool
from repro.runtime.sharding import (
    ShardedRunResult,
    ShardedVerificationRunner,
    ShardResult,
    shard_claims,
)
from repro.runtime.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    ServiceSnapshot,
    SnapshotStore,
    scrutinizer_config_from_dict,
    scrutinizer_config_to_dict,
)

__all__ = [
    "EXECUTOR_KINDS",
    "SNAPSHOT_SCHEMA_VERSION",
    "ServiceSnapshot",
    "ShardResult",
    "ShardedRunResult",
    "ShardedVerificationRunner",
    "SnapshotStore",
    "WorkerPool",
    "scrutinizer_config_from_dict",
    "scrutinizer_config_to_dict",
    "shard_claims",
]
