"""``python -m repro.runtime`` — operate sharded, checkpointed runs.

Three verbs over the synthetic workload (the reproduction's stand-in for
the proprietary IEA corpus):

``run``
    Generate a deterministic workload, verify it across K shards, and
    optionally checkpoint every shard after every batch::

        python -m repro.runtime run --claims 120 --shards 4 \\
            --checkpoint ./ckpt --report report.json

``resume``
    Pick an interrupted run back up from its checkpoint directory.  The
    workload recipe (claim count, seed, batching) is stored in the
    directory's ``manifest.json``, so the corpus is regenerated
    deterministically — no other inputs needed::

        python -m repro.runtime resume --checkpoint ./ckpt

``status``
    Inspect a checkpoint directory without touching it: per-shard batches
    run, verified/pending counts, completion.

Interrupting ``run`` (crash, Ctrl-C, batch cap) and then ``resume``-ing
reaches the same verified-claim set as an uninterrupted run — the snapshot
layer restores classifier weights, claim statuses and RNG streams exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.api.serialization import write_report
from repro.config import BatchingConfig, ScrutinizerConfig
from repro.errors import ReproError
from repro.runtime.sharding import ShardedVerificationRunner
from repro.runtime.snapshot import SNAPSHOT_SCHEMA_VERSION, ServiceSnapshot
from repro.synth.energy_data import EnergyDataConfig
from repro.synth.report_generator import SyntheticCorpusConfig, generate_corpus

__all__ = ["main"]

_MANIFEST_NAME = "manifest.json"


# ---------------------------------------------------------------------- #
# workload recipe
# ---------------------------------------------------------------------- #
def _workload_config(
    claim_count: int, seed: int, batch_size: int, sequential: bool
) -> tuple[SyntheticCorpusConfig, ScrutinizerConfig]:
    """The deterministic synthetic workload behind the CLI verbs."""
    corpus_config = SyntheticCorpusConfig(
        claim_count=claim_count,
        section_count=max(4, claim_count // 15),
        explicit_fraction=0.5,
        error_fraction=0.25,
        data=EnergyDataConfig(
            relation_count=max(6, claim_count // 8),
            rows_per_relation=14,
            seed=seed + 1,
        ),
        seed=seed,
    )
    system_config = ScrutinizerConfig(
        checker_count=3,
        options_per_property=10,
        batching=BatchingConfig(min_batch_size=1, max_batch_size=batch_size),
        claim_ordering=not sequential,
        seed=seed,
    )
    return corpus_config, system_config


def _build_runner(manifest: dict, checkpoint_dir: Path | None) -> ShardedVerificationRunner:
    corpus_config, system_config = _workload_config(
        claim_count=int(manifest["claim_count"]),
        seed=int(manifest["seed"]),
        batch_size=int(manifest["batch_size"]),
        sequential=bool(manifest["sequential"]),
    )
    corpus = generate_corpus(corpus_config)
    return ShardedVerificationRunner(
        corpus,
        system_config,
        shard_count=int(manifest["shard_count"]),
        executor=str(manifest["executor"]),
        checkpoint_dir=checkpoint_dir,
    )


def _write_manifest(checkpoint_dir: Path, manifest: dict) -> None:
    checkpoint_dir.mkdir(parents=True, exist_ok=True)
    (checkpoint_dir / _MANIFEST_NAME).write_text(
        json.dumps({"schema_version": SNAPSHOT_SCHEMA_VERSION, **manifest}, indent=2)
        + "\n",
        encoding="utf-8",
    )


def _read_manifest(checkpoint_dir: Path) -> dict:
    path = checkpoint_dir / _MANIFEST_NAME
    if not path.exists():
        raise ReproError(
            f"{checkpoint_dir} is not a runtime checkpoint directory "
            f"(missing {_MANIFEST_NAME}); create one with "
            f"'python -m repro.runtime run --checkpoint ...'"
        )
    manifest = json.loads(path.read_text(encoding="utf-8"))
    version = manifest.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise ReproError(
            f"unsupported checkpoint schema version {version!r} "
            f"(expected {SNAPSHOT_SCHEMA_VERSION})"
        )
    return manifest


# ---------------------------------------------------------------------- #
# verbs
# ---------------------------------------------------------------------- #
def _print_result(result, out) -> None:
    report = result.report
    print(
        f"verified {report.claim_count} claims in {result.wall_seconds:.2f}s wall "
        f"({result.claims_per_second:.1f} claims/s) across "
        f"{len(result.shards)} shard(s) [{result.executor}]",
        file=out,
    )
    for shard in result.shards:
        print(
            f"  shard {shard.shard_index}: {shard.report.claim_count}/"
            f"{shard.claim_count} claims, {shard.batches_run} batches, "
            f"{shard.wall_seconds:.2f}s",
            file=out,
        )
    print(
        f"crowd time {report.total_seconds / 3600.0:.1f} simulated hours, "
        f"machine time {report.computation_seconds:.2f}s",
        file=out,
    )


def _cmd_run(args: argparse.Namespace, out) -> int:
    manifest = {
        "claim_count": args.claims,
        "seed": args.seed,
        "batch_size": args.batch_size,
        "sequential": args.sequential,
        "shard_count": args.shards,
        "executor": args.executor,
    }
    checkpoint_dir = Path(args.checkpoint) if args.checkpoint else None
    if checkpoint_dir is not None:
        _write_manifest(checkpoint_dir, manifest)
    runner = _build_runner(manifest, checkpoint_dir)
    result = runner.run(max_batches_per_shard=args.max_batches)
    _print_result(result, out)
    if checkpoint_dir is not None:
        print(f"checkpoints in {checkpoint_dir}", file=out)
    if args.report:
        write_report(result.report, args.report)
        print(f"report written to {args.report}", file=out)
    return 0


def _cmd_resume(args: argparse.Namespace, out) -> int:
    checkpoint_dir = Path(args.checkpoint)
    manifest = _read_manifest(checkpoint_dir)
    runner = _build_runner(manifest, checkpoint_dir)
    result = runner.resume(max_batches_per_shard=args.max_batches)
    _print_result(result, out)
    if args.report:
        write_report(result.report, args.report)
        print(f"report written to {args.report}", file=out)
    return 0


def _cmd_status(args: argparse.Namespace, out) -> int:
    checkpoint_dir = Path(args.checkpoint)
    manifest = _read_manifest(checkpoint_dir)
    print(
        f"workload: {manifest['claim_count']} claims (seed {manifest['seed']}), "
        f"{manifest['shard_count']} shard(s), executor {manifest['executor']}",
        file=out,
    )
    total_verified = total_pending = 0
    for index in range(int(manifest["shard_count"])):
        path = checkpoint_dir / f"shard-{index}.json"
        if not path.exists():
            print(f"  shard {index}: no checkpoint yet", file=out)
            continue
        snapshot = ServiceSnapshot.load(path)
        total_verified += snapshot.verified_count
        total_pending += snapshot.pending_count
        state = "complete" if snapshot.is_complete else "in progress"
        print(
            f"  shard {index}: {snapshot.batch_index} batches, "
            f"{snapshot.verified_count} verified, {snapshot.pending_count} "
            f"pending ({state})",
            file=out,
        )
    print(f"total: {total_verified} verified, {total_pending} pending", file=out)
    return 0


# ---------------------------------------------------------------------- #
# argument parsing
# ---------------------------------------------------------------------- #
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime",
        description="Sharded, checkpointed claim-verification runs.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="verify a synthetic workload")
    run.add_argument("--claims", type=int, default=120, help="workload size")
    run.add_argument("--seed", type=int, default=7, help="workload seed")
    run.add_argument("--batch-size", type=int, default=20, help="claims per batch")
    run.add_argument("--shards", type=int, default=4, help="shard count K")
    run.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help="worker pool backing the shards",
    )
    run.add_argument(
        "--sequential",
        action="store_true",
        help="disable claim ordering (the paper's Sequential baseline)",
    )
    run.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="stop every shard after this many batches (for staged runs)",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        help="directory to checkpoint each shard into after every batch",
    )
    run.add_argument("--report", default=None, help="write the merged report JSON here")

    resume = commands.add_parser("resume", help="continue from a checkpoint directory")
    resume.add_argument("--checkpoint", required=True, help="checkpoint directory")
    resume.add_argument(
        "--max-batches",
        type=int,
        default=None,
        help="stop every shard after this many further batches",
    )
    resume.add_argument("--report", default=None, help="write the merged report JSON here")

    status = commands.add_parser("status", help="inspect a checkpoint directory")
    status.add_argument("--checkpoint", required=True, help="checkpoint directory")
    return parser


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    handlers = {"run": _cmd_run, "resume": _cmd_resume, "status": _cmd_status}
    try:
        return handlers[args.command](args, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
