"""Claim preprocessing (Section 4.1, Figure 4).

Preprocessing turns a claim into (i) the dense feature vector consumed by
the property classifiers and (ii) the syntactically extracted parameter for
explicit claims.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import asdict, dataclass

import numpy as np

from repro.claims.model import Claim
from repro.text.features import ClaimFeaturizer, FeaturizerConfig
from repro.text.numbers import extract_numeric_mentions, extract_parameter


@dataclass(frozen=True)
class PreprocessedClaim:
    """A claim together with its derived features."""

    claim: Claim
    features: np.ndarray
    extracted_parameter: float | None
    numeric_mention_count: int

    @property
    def parameter(self) -> float | None:
        """The parameter to use for matching: stated if present, else extracted."""
        if self.claim.parameter is not None:
            return self.claim.parameter
        return self.extracted_parameter


class ClaimPreprocessor:
    """Fits the featurizer on a corpus of texts and preprocesses claims."""

    def __init__(self, featurizer: ClaimFeaturizer | None = None) -> None:
        self._featurizer = featurizer if featurizer is not None else ClaimFeaturizer(
            FeaturizerConfig()
        )
        self._fitted_claim_texts: list[str] = []
        self._fitted_sentence_texts: list[str] = []

    @property
    def featurizer(self) -> ClaimFeaturizer:
        return self._featurizer

    def fit(self, claims: Sequence[Claim]) -> "ClaimPreprocessor":
        """Fit the feature pipeline on the claims available at bootstrap."""
        return self.fit_texts(
            [claim.text for claim in claims],
            [claim.context_text for claim in claims],
        )

    def fit_texts(self, claim_texts: Sequence[str], sentence_texts: Sequence[str] | None = None) -> "ClaimPreprocessor":
        self._fitted_claim_texts = list(claim_texts)
        self._fitted_sentence_texts = (
            list(sentence_texts) if sentence_texts is not None else list(claim_texts)
        )
        self._featurizer.fit(claim_texts, sentence_texts)
        return self

    def refit_with(self, claims: Sequence[Claim]) -> "ClaimPreprocessor":
        """Refit the featurizer on the fit corpus extended with ``claims``.

        Used by incremental retraining once enough unseen vocabulary has
        accumulated: the TF-IDF vocabularies absorb the new texts while the
        original corpus keeps anchoring the document frequencies.  Texts
        already in the fit corpus are skipped, so re-absorbing a claim
        cannot inflate its terms' document frequencies; when nothing new
        remains the refit is skipped entirely.  A real refit bumps
        :attr:`feature_generation`, discarding cached feature rows.
        """
        existing = set(zip(self._fitted_claim_texts, self._fitted_sentence_texts))
        fresh: list[Claim] = []
        for claim in claims:
            key = (claim.text, claim.context_text)
            if key not in existing:
                existing.add(key)
                fresh.append(claim)
        if not fresh:
            return self
        return self.fit_texts(
            self._fitted_claim_texts + [claim.text for claim in fresh],
            self._fitted_sentence_texts + [claim.context_text for claim in fresh],
        )

    def unseen_terms(self, claims: Sequence[Claim]) -> set[str]:
        """N-grams in ``claims`` that the fitted featurizer has never seen."""
        return self._featurizer.unseen_terms([claim.text for claim in claims])

    @property
    def feature_generation(self) -> int:
        """Generation of the underlying featurizer (bumped on every refit)."""
        return self._featurizer.generation

    def preprocess(self, claim: Claim) -> PreprocessedClaim:
        """Featurise one claim and extract its numeric parameter."""
        features = self._featurizer.transform_dense(claim.text, claim.context_text)
        mentions = extract_numeric_mentions(claim.text)
        return PreprocessedClaim(
            claim=claim,
            features=features,
            extracted_parameter=extract_parameter(claim.text),
            numeric_mention_count=len(mentions),
        )

    def preprocess_many(self, claims: Sequence[Claim]) -> list[PreprocessedClaim]:
        return [self.preprocess(claim) for claim in claims]

    def feature_matrix(self, claims: Sequence[Claim]) -> np.ndarray:
        """Feature matrix for a batch of claims (one row per claim)."""
        return self._featurizer.transform_matrix(
            [claim.text for claim in claims],
            [claim.context_text for claim in claims],
        )

    @property
    def is_fitted(self) -> bool:
        return self._featurizer.is_fitted

    # ------------------------------------------------------------------ #
    # checkpoint state
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict[str, object]:
        """JSON-compatible state: featurizer config plus the fit corpus.

        Fitting is a deterministic function of the config and the fit
        texts, so the state stores those instead of vocabularies and IDF
        arrays; :meth:`from_state` refits and lands on byte-identical
        feature vectors.
        """
        return {
            "featurizer_config": asdict(self._featurizer.config),
            "claim_texts": list(self._fitted_claim_texts),
            "sentence_texts": list(self._fitted_sentence_texts),
            "fitted": self.is_fitted,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, object]) -> "ClaimPreprocessor":
        """Rebuild a preprocessor producing byte-identical features."""
        config = FeaturizerConfig(**state["featurizer_config"])  # type: ignore[arg-type]
        preprocessor = cls(ClaimFeaturizer(config))
        if state.get("fitted"):
            preprocessor.fit_texts(
                list(state.get("claim_texts", ())),  # type: ignore[arg-type]
                list(state.get("sentence_texts", ())),  # type: ignore[arg-type]
            )
        return preprocessor
