"""Query generation (Algorithm 2 of the paper).

Given validated context (relations, keys, attributes), a ranked list of
candidate formulas and — for explicit claims — the stated parameter ``p``,
the generator collects all data-value assignments, instantiates each
formula over permutations of those assignments, keeps the assignments whose
value approximately matches ``p`` (explicit claims) and rewrites the
surviving assignments into statistical-check SQL queries.
"""

from __future__ import annotations

import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.config import TranslationConfig
from repro.dataset.database import Database
from repro.dataset.types import is_numeric, values_close
from repro.errors import FormulaError
from repro.formulas.ast import Formula
from repro.formulas.instantiate import FormulaInstantiator, InstantiatedQuery, ValueRef
from repro.sqlengine.functions import FunctionLibrary


@dataclass(frozen=True)
class QueryCandidate:
    """One generated query with its tentative execution result."""

    instantiated: InstantiatedQuery
    matches_parameter: bool
    formula_rank: int

    @property
    def query(self):
        return self.instantiated.query

    @property
    def value(self) -> float | None:
        return self.instantiated.value

    @property
    def sql(self) -> str:
        return self.instantiated.sql


@dataclass(frozen=True)
class QueryGenerationResult:
    """The outcome of Algorithm 2 for one claim."""

    candidates: tuple[QueryCandidate, ...]
    alternatives: tuple[QueryCandidate, ...]
    assignments_tried: int
    truncated: bool = False

    @property
    def has_match(self) -> bool:
        return bool(self.candidates)

    @property
    def best(self) -> QueryCandidate | None:
        """The highest-ranked candidate (matching first, then alternatives)."""
        if self.candidates:
            return self.candidates[0]
        if self.alternatives:
            return self.alternatives[0]
        return None

    def suggested_values(self, limit: int = 5) -> tuple[float, ...]:
        """Values produced by alternative queries, proposed as corrections."""
        values: list[float] = []
        for candidate in self.alternatives:
            if candidate.value is None:
                continue
            if not any(values_close(candidate.value, existing, 1e-9) for existing in values):
                values.append(candidate.value)
            if len(values) >= limit:
                break
        return tuple(values)


@dataclass(frozen=True)
class _ValueCell:
    """A resolved data cell: its reference and numeric value."""

    ref: ValueRef
    value: float


def _attribute_sort_key(attribute: str) -> float:
    """Numeric ordering key for attributes; non-numeric labels sort last."""
    try:
        return float(attribute)
    except ValueError:
        return float("-inf")


class QueryGenerator:
    """Implements Algorithm 2 over a database corpus."""

    def __init__(
        self,
        database: Database,
        config: TranslationConfig | None = None,
        functions: FunctionLibrary | None = None,
        key_attribute: str = "Index",
    ) -> None:
        self._database = database
        self._config = config if config is not None else TranslationConfig()
        self._instantiator = FormulaInstantiator(
            database, functions=functions, key_attribute=key_attribute
        )

    # ------------------------------------------------------------------ #
    # Algorithm 2
    # ------------------------------------------------------------------ #
    def generate(
        self,
        relations: Sequence[str],
        keys: Sequence[str],
        attributes: Sequence[str],
        formulas: Sequence[Formula],
        parameter: float | None = None,
        max_alternatives: int = 40,
    ) -> QueryGenerationResult:
        """Generate candidate queries for one claim.

        ``relations``, ``keys`` and ``attributes`` are assumed validated by
        the crowd (Section 4.3); ``formulas`` is the ranked classifier
        output; ``parameter`` is the explicit claim's stated value, or
        ``None`` for general claims.
        """
        cells = self._collect_values(relations, keys, attributes)
        matched: list[QueryCandidate] = []
        alternatives: list[QueryCandidate] = []
        assignments_tried = 0
        truncated = False
        for rank, formula in enumerate(formulas):
            variable_names = formula.value_variables()
            if not variable_names:
                continue
            if len(cells) < len(variable_names):
                continue
            for assignment in itertools.permutations(cells, len(variable_names)):
                assignments_tried += 1
                if assignments_tried > self._config.max_permutations:
                    truncated = True
                    break
                value_assignment = {
                    name: cell.ref for name, cell in zip(variable_names, assignment)
                }
                attribute_assignment = self._attribute_assignment(formula, assignment)
                try:
                    instantiated = self._instantiator.instantiate(
                        formula, value_assignment, attribute_assignment
                    )
                except FormulaError:
                    # The assignment cannot be rewritten into SQL (e.g. an
                    # attribute variable bound to a non-numeric label): it is
                    # not a valid candidate, not a failure of the claim.
                    continue
                if instantiated.value is None:
                    continue
                is_match = parameter is not None and values_close(
                    instantiated.value, parameter, self._config.admissible_error
                )
                candidate = QueryCandidate(
                    instantiated=instantiated,
                    matches_parameter=is_match,
                    formula_rank=rank,
                )
                if is_match:
                    matched.append(candidate)
                elif len(alternatives) < max_alternatives:
                    alternatives.append(candidate)
            if truncated:
                break
        return QueryGenerationResult(
            candidates=tuple(matched),
            alternatives=tuple(alternatives),
            assignments_tried=assignments_tried,
            truncated=truncated,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _collect_values(
        self,
        relations: Sequence[str],
        keys: Sequence[str],
        attributes: Sequence[str],
    ) -> list[_ValueCell]:
        """Line 7 of Algorithm 2: every (relation, key, attribute) data value."""
        cells: list[_ValueCell] = []
        for relation_name in relations:
            relation = self._database.get(relation_name)
            if relation is None:
                continue
            for key in keys:
                if not relation.has_key(key):
                    continue
                for attribute in attributes:
                    if not relation.has_attribute(attribute):
                        continue
                    value = relation.value(key, attribute)
                    if value is None or not is_numeric(value):
                        continue
                    cells.append(
                        _ValueCell(
                            ref=ValueRef(
                                relation=relation_name, key=key, attribute=attribute
                            ),
                            value=float(value),
                        )
                    )
        # Later years first: statistical checks conventionally relate the most
        # recent value to an earlier one (growth, CAGR, fold change), so the
        # first permutations tried are the most plausible bindings.
        cells.sort(key=lambda cell: -_attribute_sort_key(cell.ref.attribute))
        return cells

    @staticmethod
    def _attribute_assignment(
        formula: Formula, assignment: Sequence[_ValueCell]
    ) -> dict[str, str]:
        """Bind attribute variables from the attributes of the assigned cells.

        ``A1`` takes the attribute of the first bound value variable, ``A2``
        of the second, and so on; surplus attribute variables cycle over the
        assigned cells.  This matches the common shape of IEA checks where
        the attribute variables refer to the years of the looked-up values
        (e.g. the CAGR formula of Example 1).
        """
        attribute_variables = formula.attribute_variables()
        if not attribute_variables:
            return {}
        labels = [cell.ref.attribute for cell in assignment]
        if not labels:
            return {}
        mapping: dict[str, str] = {}
        for index, name in enumerate(attribute_variables):
            mapping[name] = labels[index % len(labels)]
        return mapping
