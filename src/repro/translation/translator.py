"""End-to-end claim-to-query translation facade.

:class:`ClaimTranslator` wires the preprocessor, the four property
classifiers and the query generator together.  Algorithm 1 uses it twice
per claim: once to obtain property predictions (turned into answer options
by the question planner) and once — after the crowd validated the context —
to generate and tentatively execute candidate queries.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import asdict, dataclass

from repro.claims.model import Claim, ClaimGroundTruth, ClaimProperty
from repro.config import TranslationConfig
from repro.dataset.database import Database
from repro.errors import FormulaSyntaxError, TranslationError
from repro.formulas.ast import Formula
from repro.formulas.parser import parse_formula
from repro.ml.base import Prediction
from repro.pipeline.batch import ClaimBatchPredictions
from repro.translation.classifiers import PropertyClassifierSuite, SuiteConfig, TrainingExample
from repro.translation.preprocess import ClaimPreprocessor
from repro.translation.querygen import QueryGenerationResult, QueryGenerator


@dataclass(frozen=True)
class TranslationResult:
    """Everything the system derived for one claim."""

    claim: Claim
    predictions: Mapping[ClaimProperty, Prediction]
    generation: QueryGenerationResult
    #: ``True`` = validated, ``False`` = contradicted, ``None`` = undecided
    #: (general claims whose parameter only a human can judge).
    verdict: bool | None
    suggested_values: tuple[float, ...] = ()

    @property
    def best_sql(self) -> str | None:
        best = self.generation.best
        return best.sql if best is not None else None

    @property
    def best_value(self) -> float | None:
        best = self.generation.best
        return best.value if best is not None else None


class ClaimTranslator:
    """The automated translation component of Scrutinizer."""

    def __init__(
        self,
        database: Database,
        config: TranslationConfig | None = None,
        preprocessor: ClaimPreprocessor | None = None,
        suite_config: SuiteConfig | None = None,
        key_attribute: str = "Index",
    ) -> None:
        self.config = config if config is not None else TranslationConfig()
        self._database = database
        self._preprocessor = preprocessor if preprocessor is not None else ClaimPreprocessor()
        if suite_config is None:
            suite_config = SuiteConfig(
                warm_start=self.config.warm_start,
                vocabulary_refit_threshold=self.config.vocabulary_refit_threshold,
            )
        self._suite = PropertyClassifierSuite(self._preprocessor, suite_config)
        self._key_attribute = key_attribute
        self._generator = QueryGenerator(
            database, config=self.config, key_attribute=key_attribute
        )

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    @property
    def suite(self) -> PropertyClassifierSuite:
        return self._suite

    @property
    def database(self) -> Database:
        return self._database

    @property
    def is_trained(self) -> bool:
        return self._suite.is_trained

    @property
    def features_ready(self) -> bool:
        """Whether the feature pipeline is fitted (classifiers may not be).

        A translator bootstrapped with ``fit_features_only=True`` — the
        warm-template path every tenant session starts from — is not yet
        *trained*, but its featurizer needs no further fitting: the first
        retrain can feed the classifiers directly instead of re-fitting
        the corpus featurizer from scratch.
        """
        return self._preprocessor.is_fitted

    def bootstrap(
        self,
        claims: Sequence[Claim],
        truths: Sequence[ClaimGroundTruth] | None = None,
        fit_features_only: bool = False,
    ) -> "ClaimTranslator":
        """Fit the feature pipeline and, when labels are given, the classifiers.

        In the paper's warm-start setting the previously checked claims
        provide labels immediately; in the cold-start scenario only the
        claim texts are available, so ``fit_features_only=True`` fits the
        featurizer and defers classifier training to the first retrain.
        """
        if not claims:
            raise TranslationError("bootstrap requires at least one claim")
        self._preprocessor.fit(claims)
        if fit_features_only or truths is None:
            return self
        if len(claims) != len(truths):
            raise TranslationError("claims and truths must be aligned")
        examples = [
            TrainingExample.from_ground_truth(claim, truth)
            for claim, truth in zip(claims, truths)
        ]
        self._suite.fit(examples)
        return self

    def evaluate_accuracy(
        self,
        claims: Sequence[Claim],
        truths: Sequence[ClaimGroundTruth],
        top_k: int = 1,
    ) -> dict[ClaimProperty, float]:
        """Per-property top-k accuracy on held-out claims.

        Part of the :class:`~repro.api.protocols.TranslationBackend`
        protocol; delegates to the classifier suite.
        """
        return self._suite.evaluate_accuracy(claims, truths, top_k=top_k)

    def retrain(self, claims: Sequence[Claim], truths: Sequence[ClaimGroundTruth]) -> None:
        """Feed newly verified claims back into the classifiers (Algorithm 1)."""
        if len(claims) != len(truths):
            raise TranslationError("claims and truths must be aligned")
        examples = [
            TrainingExample.from_ground_truth(claim, truth)
            for claim, truth in zip(claims, truths)
        ]
        self._suite.retrain(examples)

    # ------------------------------------------------------------------ #
    # prediction and generation
    # ------------------------------------------------------------------ #
    def predict(self, claim: Claim) -> dict[ClaimProperty, Prediction]:
        """Ranked property predictions for one claim.

        Thin wrapper over the batch path (a one-claim batch), kept for API
        compatibility.
        """
        return self._suite.predict(claim)

    def predict_many(self, claims: Sequence[Claim]) -> ClaimBatchPredictions:
        """Predictions for many claims from one feature matrix.

        The batch front door of the translation component: one shared
        feature-store lookup, one matrix multiplication per property.  The
        returned :class:`~repro.pipeline.batch.ClaimBatchPredictions`
        serves both array consumers (batch-selection scoring) and ranked
        per-claim dictionaries (question planning for selected claims).
        """
        return self._suite.predict_proba_many(claims)

    def candidate_labels(
        self, claim: Claim, claim_property: ClaimProperty, top_k: int | None = None
    ) -> list[tuple[str, float]]:
        """Top-k (label, probability) pairs for one property of one claim."""
        limits = {
            ClaimProperty.RELATION: self.config.top_k_relations,
            ClaimProperty.KEY: self.config.top_k_keys,
            ClaimProperty.ATTRIBUTE: self.config.top_k_attributes,
            ClaimProperty.FORMULA: self.config.top_k_formulas,
        }
        limit = top_k if top_k is not None else limits[claim_property]
        prediction = self._suite.predict_property(claim, claim_property)
        return prediction.top_k(limit)

    def translate(
        self,
        claim: Claim,
        validated_context: Mapping[ClaimProperty, Sequence[str]] | None = None,
    ) -> TranslationResult:
        """Translate a claim into candidate queries and a tentative verdict.

        ``validated_context`` carries the crowd-confirmed labels per
        property; for properties not present (typically the formula, which
        the crowd never validates directly) the classifier's top-k output is
        used instead.
        """
        predictions = self.predict(claim)
        relations = self._context_labels(claim, ClaimProperty.RELATION, validated_context)
        keys = self._context_labels(claim, ClaimProperty.KEY, validated_context)
        attributes = self._context_labels(claim, ClaimProperty.ATTRIBUTE, validated_context)
        formula_labels = self._context_labels(claim, ClaimProperty.FORMULA, validated_context)
        formulas = self._parse_formulas(formula_labels)
        parameter = claim.parameter
        generation = self._generator.generate(
            relations=relations,
            keys=keys,
            attributes=attributes,
            formulas=formulas,
            parameter=parameter,
        )
        verdict: bool | None
        if claim.is_explicit and parameter is not None:
            verdict = generation.has_match
        else:
            verdict = None
        return TranslationResult(
            claim=claim,
            predictions=predictions,
            generation=generation,
            verdict=verdict,
            suggested_values=generation.suggested_values(),
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _context_labels(
        self,
        claim: Claim,
        claim_property: ClaimProperty,
        validated_context: Mapping[ClaimProperty, Sequence[str]] | None,
    ) -> list[str]:
        if validated_context is not None and claim_property in validated_context:
            labels = list(validated_context[claim_property])
            if labels:
                return labels
        return [label for label, _ in self.candidate_labels(claim, claim_property)]

    @staticmethod
    def _parse_formulas(labels: Sequence[str]) -> list[Formula]:
        formulas: list[Formula] = []
        for label in labels:
            try:
                formulas.append(parse_formula(label))
            except FormulaSyntaxError:
                continue
        return formulas

    # ------------------------------------------------------------------ #
    # checkpoint state
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict[str, object]:
        """JSON-compatible state of the translation component.

        Covers the translation config, the fitted preprocessor and the
        classifier suite (models, training examples, refit accounting).
        The database is deliberately excluded — it is shared, read-only
        infrastructure that the restoring side already holds.
        """
        return {
            "kind": "claim_translator",
            "config": asdict(self.config),
            "key_attribute": self._key_attribute,
            "preprocessor": self._preprocessor.to_state(),
            "suite": self._suite.to_state(),
        }

    @classmethod
    def from_state(
        cls,
        database: Database,
        state: Mapping[str, object],
        claim_lookup: Callable[[str], Claim],
    ) -> "ClaimTranslator":
        """Rebuild a translator from :meth:`to_state` output.

        ``claim_lookup`` resolves stored training-example claim ids (e.g.
        ``corpus.claim``).  The restored translator predicts byte-identically
        to the captured one: the preprocessor refits deterministically on
        its stored fit corpus and the models restore their exact weights.
        """
        config = TranslationConfig(**state["config"])  # type: ignore[arg-type]
        preprocessor = ClaimPreprocessor.from_state(state["preprocessor"])  # type: ignore[arg-type]
        translator = cls(
            database,
            config=config,
            preprocessor=preprocessor,
            key_attribute=str(state.get("key_attribute", "Index")),
        )
        translator._suite = PropertyClassifierSuite.from_state(
            state["suite"], preprocessor, claim_lookup  # type: ignore[arg-type]
        )
        return translator
