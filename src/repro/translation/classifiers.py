"""The four property classifiers (Section 3.1 / 4.1).

One classifier per query property — relations, primary-key values,
attribute labels and formulas — each trained over the Figure 4 features.
The suite keeps all four aligned, retrains them as labelled claims arrive
(active learning) and exposes the ranked probability distributions consumed
by query generation and by question planning.

The suite is batch-first: features come from a shared
:class:`~repro.pipeline.feature_store.ClaimFeatureStore` (featurize once
per featurizer generation), prediction for many claims is one matrix
multiplication per property (:meth:`PropertyClassifierSuite.predict_many`),
and retraining is incremental — softmax weights warm-start from the
previous fit, and the TF-IDF vocabulary is only refit once enough unseen
n-grams have accumulated (which bumps the feature generation and restarts
the models cold).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import asdict, dataclass

import numpy as np

from repro.claims.model import Claim, ClaimGroundTruth, ClaimProperty
from repro.errors import ConfigurationError, NotFittedError, TranslationError
from repro.ml.base import Prediction
from repro.ml.knn import KNearestNeighborsClassifier
from repro.ml.logistic import SoftmaxRegressionClassifier
from repro.ml.naive_bayes import MultinomialNaiveBayesClassifier
from repro.ml.state import model_from_state, model_to_state
from repro.pipeline.batch import ClaimBatchPredictions, PropertyBatch
from repro.pipeline.feature_store import ClaimFeatureStore
from repro.translation.preprocess import ClaimPreprocessor

#: Model backends selectable through :attr:`SuiteConfig.model_kind`.
MODEL_KINDS = ("auto", "softmax", "knn", "naive_bayes")


@dataclass(frozen=True)
class TrainingExample:
    """One labelled claim: text features plus the four property labels."""

    claim: Claim
    labels: Mapping[ClaimProperty, str]

    @staticmethod
    def from_ground_truth(claim: Claim, truth: ClaimGroundTruth) -> "TrainingExample":
        return TrainingExample(
            claim=claim,
            labels={
                claim_property: truth.primary_label(claim_property)
                for claim_property in ClaimProperty.ordered()
            },
        )


@dataclass
class SuiteConfig:
    """Model-selection knobs of the classifier suite.

    ``warm_start`` and ``vocabulary_refit_threshold`` mirror the
    user-facing knobs on :class:`~repro.config.TranslationConfig`;
    :class:`~repro.translation.translator.ClaimTranslator` copies them
    from there when no explicit ``SuiteConfig`` is given.  An explicit
    ``SuiteConfig`` takes full precedence — set these fields on it
    directly rather than expecting the translation config to shine
    through.
    """

    #: Below this many training samples the k-NN fallback is used.
    parametric_threshold: int = 40
    knn_neighbors: int = 5
    learning_rate: float = 0.5
    epochs: int = 120
    l2: float = 1e-3
    seed: int = 0
    #: Warm-start softmax retrains from the previous weights.
    warm_start: bool = True
    #: Refit the TF-IDF vocabulary after this many accumulated unseen
    #: n-grams (0 disables; see ``TranslationConfig``).
    vocabulary_refit_threshold: int = 200
    #: Which model backend to use: ``"auto"`` picks softmax above the
    #: parametric threshold and k-NN below it (the paper's setup), while
    #: ``"softmax"``, ``"knn"`` and ``"naive_bayes"`` force one backend for
    #: every property regardless of training-set size.
    model_kind: str = "auto"

    def __post_init__(self) -> None:
        if self.model_kind not in MODEL_KINDS:
            raise ConfigurationError(
                f"model_kind must be one of {MODEL_KINDS}, got {self.model_kind!r}"
            )


class PropertyClassifierSuite:
    """Trains and serves the four property classifiers."""

    def __init__(
        self,
        preprocessor: ClaimPreprocessor,
        config: SuiteConfig | None = None,
    ) -> None:
        self._preprocessor = preprocessor
        self._config = config if config is not None else SuiteConfig()
        self._models: dict[ClaimProperty, object] = {}
        self._examples: list[TrainingExample] = []
        self._store = ClaimFeatureStore(preprocessor)
        self._retrain_count = 0
        #: Feature generation the current models were trained on; a refit
        #: of the vocabulary invalidates warm starts along with the cache.
        self._models_generation: int | None = None
        #: Distinct n-grams in accumulated examples that the featurizer has
        #: never seen; crossing the threshold triggers a vocabulary refit.
        self._unseen_terms: set[str] = set()
        #: How many of ``self._examples`` are already part of the
        #: featurizer's fit corpus (avoids re-absorbing texts on refits).
        self._absorbed_example_count = 0

    # ------------------------------------------------------------------ #
    # training data management
    # ------------------------------------------------------------------ #
    @property
    def example_count(self) -> int:
        return len(self._examples)

    @property
    def retrain_count(self) -> int:
        return self._retrain_count

    @property
    def preprocessor(self) -> ClaimPreprocessor:
        return self._preprocessor

    @property
    def feature_store(self) -> ClaimFeatureStore:
        """The shared claim-feature cache (generation-invalidated)."""
        return self._store

    @property
    def feature_generation(self) -> int:
        """The featurizer generation currently being served."""
        return self._store.generation

    @property
    def pending_unseen_term_count(self) -> int:
        """Unseen n-grams accumulated toward the next vocabulary refit."""
        return len(self._unseen_terms)

    def add_examples(self, examples: Sequence[TrainingExample]) -> None:
        """Accumulate labelled claims without retraining yet."""
        self._examples.extend(examples)
        self._track_unseen_terms(examples)

    def _track_unseen_terms(self, examples: Sequence[TrainingExample]) -> None:
        if self._config.vocabulary_refit_threshold <= 0:
            return
        if not self._preprocessor.is_fitted:
            return
        self._unseen_terms |= self._preprocessor.unseen_terms(
            [example.claim for example in examples]
        )

    def _features_of(self, claim: Claim) -> np.ndarray:
        """One cached feature row (generation-tagged; never stale)."""
        return self._store.vector(claim)

    # ------------------------------------------------------------------ #
    # (re)training
    # ------------------------------------------------------------------ #
    def fit(self, examples: Sequence[TrainingExample] | None = None) -> "PropertyClassifierSuite":
        """Train all four classifiers on the accumulated examples."""
        if examples is not None:
            self._examples = list(examples)
            self._unseen_terms = set()
            self._absorbed_example_count = 0
            self._track_unseen_terms(self._examples)
        if not self._examples:
            raise TranslationError("cannot train the classifier suite without examples")
        self._maybe_refit_vocabulary()
        features = self._store.matrix([example.claim for example in self._examples])
        generation = self._store.generation
        warm_eligible = self._config.warm_start and generation == self._models_generation
        for claim_property in ClaimProperty.ordered():
            labels = [example.labels[claim_property] for example in self._examples]
            model = self._resolve_model(
                self._models.get(claim_property) if warm_eligible else None,
                len(self._examples),
                len(set(labels)),
            )
            model.fit(features, labels)
            self._models[claim_property] = model
        self._models_generation = generation
        self._retrain_count += 1
        return self

    def retrain(self, new_examples: Sequence[TrainingExample]) -> "PropertyClassifierSuite":
        """Add newly verified claims as training samples and refit (Algorithm 1)."""
        self.add_examples(new_examples)
        return self.fit()

    def _maybe_refit_vocabulary(self) -> None:
        """Absorb accumulated unseen vocabulary once it crosses the threshold.

        The refit extends the featurizer's fit corpus with the not-yet
        absorbed example texts and bumps the feature generation: the shared
        store drops every cached row and the next ``fit`` restarts the
        models cold (warm starts across feature spaces would be garbage).
        """
        threshold = self._config.vocabulary_refit_threshold
        if threshold <= 0 or not self._preprocessor.is_fitted:
            return
        if len(self._unseen_terms) < threshold:
            return
        fresh = self._examples[self._absorbed_example_count :]
        self._preprocessor.refit_with([example.claim for example in fresh])
        self._absorbed_example_count = len(self._examples)
        self._unseen_terms = set()

    def _resolve_model(self, previous: object | None, sample_count: int, class_count: int):
        """Pick the model for one property, continuing a warm fit if possible."""
        wants_softmax = self._config.model_kind == "softmax" or (
            self._config.model_kind == "auto"
            and sample_count >= self._config.parametric_threshold
            and class_count >= 2
        )
        if wants_softmax and isinstance(previous, SoftmaxRegressionClassifier):
            return previous
        return self._make_model(sample_count, class_count)

    def _make_model(self, sample_count: int, class_count: int):
        kind = self._config.model_kind
        if kind == "auto":
            kind = (
                "knn"
                if sample_count < self._config.parametric_threshold or class_count < 2
                else "softmax"
            )
        if kind == "knn":
            return KNearestNeighborsClassifier(k=min(self._config.knn_neighbors, sample_count))
        if kind == "naive_bayes":
            return MultinomialNaiveBayesClassifier()
        return SoftmaxRegressionClassifier(
            learning_rate=self._config.learning_rate,
            epochs=self._config.epochs,
            l2=self._config.l2,
            seed=self._config.seed,
            warm_start=self._config.warm_start,
        )

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        return len(self._models) == len(ClaimProperty.ordered())

    def predict(self, claim: Claim) -> dict[ClaimProperty, Prediction]:
        """Ranked label distributions for all four properties of one claim."""
        return self.predict_many([claim])[0]

    def predict_many(
        self, claims: Sequence[Claim]
    ) -> list[dict[ClaimProperty, Prediction]]:
        """Ranked predictions for every claim, from one feature matrix."""
        return self.predict_proba_many(claims).as_prediction_dicts()

    def predict_proba_many(self, claims: Sequence[Claim]) -> ClaimBatchPredictions:
        """Batch predictions as per-property probability matrices.

        The hot path of the verification loop: one feature-store lookup for
        the whole batch, then one ``X @ W`` per property.  Ranked
        per-claim :class:`~repro.ml.base.Prediction` objects are
        materialized lazily by the returned batch, typically only for the
        claims selected into the next crowd batch.
        """
        if not self.is_trained:
            raise NotFittedError("the classifier suite has not been trained yet")
        features = self._store.matrix(claims)
        by_property = {
            claim_property: PropertyBatch(
                labels=model.classes,
                probabilities=model.predict_proba_batch(features),
            )
            for claim_property, model in self._models.items()
        }
        return ClaimBatchPredictions(
            [claim.claim_id for claim in claims], by_property
        )

    def predict_property(self, claim: Claim, claim_property: ClaimProperty) -> Prediction:
        if not self.is_trained:
            raise NotFittedError("the classifier suite has not been trained yet")
        return self._models[claim_property].predict(self._features_of(claim))

    def known_labels(self, claim_property: ClaimProperty) -> tuple[str, ...]:
        """Labels the classifier for ``claim_property`` can currently emit."""
        model = self._models.get(claim_property)
        if model is None:
            return ()
        return model.classes

    # ------------------------------------------------------------------ #
    # evaluation helpers (Figures 8-10)
    # ------------------------------------------------------------------ #
    def evaluate_accuracy(
        self,
        claims: Sequence[Claim],
        truths: Sequence[ClaimGroundTruth],
        top_k: int = 1,
    ) -> dict[ClaimProperty, float]:
        """Top-k accuracy of every classifier on held-out claims."""
        if len(claims) != len(truths):
            raise ValueError("claims and truths must be aligned")
        if not claims:
            return {claim_property: 0.0 for claim_property in ClaimProperty.ordered()}
        batch = self.predict_proba_many(claims)
        scores: dict[ClaimProperty, float] = {}
        for claim_property in ClaimProperty.ordered():
            property_batch = batch.by_property[claim_property]
            hits = 0
            for index, truth in enumerate(truths):
                prediction = property_batch.prediction(index)
                top_labels = {label for label, _ in prediction.top_k(top_k)}
                if set(truth.property_labels(claim_property)) & top_labels:
                    hits += 1
            scores[claim_property] = hits / len(claims)
        return scores

    def average_accuracy(
        self,
        claims: Sequence[Claim],
        truths: Sequence[ClaimGroundTruth],
        top_k: int = 1,
    ) -> float:
        """Mean accuracy across the four classifiers (Figure 8 series)."""
        scores = self.evaluate_accuracy(claims, truths, top_k)
        return float(np.mean(list(scores.values())))

    # ------------------------------------------------------------------ #
    # checkpoint state
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict[str, object]:
        """JSON-compatible state of the whole suite.

        Training examples are stored as claim-id/label pairs (the claims
        themselves come back from the corpus on restore), models through
        their own ``to_state`` hooks.  The preprocessor is *not* included —
        it is shared infrastructure serialized separately by
        :class:`~repro.runtime.snapshot.ServiceSnapshot`.
        """
        return {
            "config": asdict(self._config),
            "examples": [
                {
                    "claim_id": example.claim.claim_id,
                    "labels": {
                        claim_property.value: label
                        for claim_property, label in example.labels.items()
                    },
                }
                for example in self._examples
            ],
            "retrain_count": self._retrain_count,
            "unseen_terms": sorted(self._unseen_terms),
            "absorbed_example_count": self._absorbed_example_count,
            "models": {
                claim_property.value: model_to_state(model)
                for claim_property, model in self._models.items()
            },
            "models_current_generation": (
                self._models_generation is not None
                and self._models_generation == self._store.generation
            ),
        }

    @classmethod
    def from_state(
        cls,
        state: Mapping[str, object],
        preprocessor: ClaimPreprocessor,
        claim_lookup: Callable[[str], Claim],
    ) -> "PropertyClassifierSuite":
        """Rebuild a suite around an already-restored preprocessor.

        ``claim_lookup`` resolves the stored claim ids back to corpus
        claims (training examples keep their texts out of the state).  The
        restored models serve byte-identical predictions, and warm-start
        eligibility is preserved: models captured against the current
        featurizer generation remain warm-startable after restore.
        """
        suite = cls(preprocessor, SuiteConfig(**state["config"]))  # type: ignore[arg-type]
        suite._examples = [
            TrainingExample(
                claim=claim_lookup(str(entry["claim_id"])),
                labels={
                    ClaimProperty(claim_property): str(label)
                    for claim_property, label in entry["labels"].items()
                },
            )
            for entry in state.get("examples", ())  # type: ignore[union-attr]
        ]
        suite._retrain_count = int(state.get("retrain_count", 0))  # type: ignore[arg-type]
        suite._unseen_terms = {str(term) for term in state.get("unseen_terms", ())}  # type: ignore[union-attr]
        suite._absorbed_example_count = int(state.get("absorbed_example_count", 0))  # type: ignore[arg-type]
        suite._models = {
            ClaimProperty(claim_property): model_from_state(model_state)
            for claim_property, model_state in state.get("models", {}).items()  # type: ignore[union-attr]
        }
        if suite._models and state.get("models_current_generation"):
            suite._models_generation = suite._store.generation
        return suite
