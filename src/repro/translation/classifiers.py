"""The four property classifiers (Section 3.1 / 4.1).

One classifier per query property — relations, primary-key values,
attribute labels and formulas — each trained over the Figure 4 features.
The suite keeps all four aligned, retrains them as labelled claims arrive
(active learning) and exposes the ranked probability distributions consumed
by query generation and by question planning.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.claims.model import Claim, ClaimGroundTruth, ClaimProperty
from repro.errors import NotFittedError, TranslationError
from repro.ml.base import Prediction
from repro.ml.knn import KNearestNeighborsClassifier
from repro.ml.logistic import SoftmaxRegressionClassifier
from repro.translation.preprocess import ClaimPreprocessor


@dataclass(frozen=True)
class TrainingExample:
    """One labelled claim: text features plus the four property labels."""

    claim: Claim
    labels: Mapping[ClaimProperty, str]

    @staticmethod
    def from_ground_truth(claim: Claim, truth: ClaimGroundTruth) -> "TrainingExample":
        return TrainingExample(
            claim=claim,
            labels={
                claim_property: truth.primary_label(claim_property)
                for claim_property in ClaimProperty.ordered()
            },
        )


@dataclass
class SuiteConfig:
    """Model-selection knobs of the classifier suite."""

    #: Below this many training samples the k-NN fallback is used.
    parametric_threshold: int = 40
    knn_neighbors: int = 5
    learning_rate: float = 0.5
    epochs: int = 120
    l2: float = 1e-3
    seed: int = 0


class PropertyClassifierSuite:
    """Trains and serves the four property classifiers."""

    def __init__(
        self,
        preprocessor: ClaimPreprocessor,
        config: SuiteConfig | None = None,
    ) -> None:
        self._preprocessor = preprocessor
        self._config = config if config is not None else SuiteConfig()
        self._models: dict[ClaimProperty, object] = {}
        self._examples: list[TrainingExample] = []
        self._feature_cache: dict[str, np.ndarray] = {}
        self._retrain_count = 0

    # ------------------------------------------------------------------ #
    # training data management
    # ------------------------------------------------------------------ #
    @property
    def example_count(self) -> int:
        return len(self._examples)

    @property
    def retrain_count(self) -> int:
        return self._retrain_count

    @property
    def preprocessor(self) -> ClaimPreprocessor:
        return self._preprocessor

    def add_examples(self, examples: Sequence[TrainingExample]) -> None:
        """Accumulate labelled claims without retraining yet."""
        self._examples.extend(examples)

    def _features_of(self, claim: Claim) -> np.ndarray:
        cached = self._feature_cache.get(claim.claim_id)
        if cached is None:
            cached = self._preprocessor.preprocess(claim).features
            self._feature_cache[claim.claim_id] = cached
        return cached

    # ------------------------------------------------------------------ #
    # (re)training
    # ------------------------------------------------------------------ #
    def fit(self, examples: Sequence[TrainingExample] | None = None) -> "PropertyClassifierSuite":
        """Train all four classifiers on the accumulated examples."""
        if examples is not None:
            self._examples = list(examples)
        if not self._examples:
            raise TranslationError("cannot train the classifier suite without examples")
        features = np.vstack([self._features_of(example.claim) for example in self._examples])
        for claim_property in ClaimProperty.ordered():
            labels = [example.labels[claim_property] for example in self._examples]
            model = self._make_model(len(self._examples), len(set(labels)))
            model.fit(features, labels)
            self._models[claim_property] = model
        self._retrain_count += 1
        return self

    def retrain(self, new_examples: Sequence[TrainingExample]) -> "PropertyClassifierSuite":
        """Add newly verified claims as training samples and refit (Algorithm 1)."""
        self.add_examples(new_examples)
        return self.fit()

    def _make_model(self, sample_count: int, class_count: int):
        if sample_count < self._config.parametric_threshold or class_count < 2:
            return KNearestNeighborsClassifier(k=min(self._config.knn_neighbors, sample_count))
        return SoftmaxRegressionClassifier(
            learning_rate=self._config.learning_rate,
            epochs=self._config.epochs,
            l2=self._config.l2,
            seed=self._config.seed,
        )

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        return len(self._models) == len(ClaimProperty.ordered())

    def predict(self, claim: Claim) -> dict[ClaimProperty, Prediction]:
        """Ranked label distributions for all four properties of one claim."""
        if not self.is_trained:
            raise NotFittedError("the classifier suite has not been trained yet")
        features = self._features_of(claim)
        return {
            claim_property: model.predict(features)
            for claim_property, model in self._models.items()
        }

    def predict_property(self, claim: Claim, claim_property: ClaimProperty) -> Prediction:
        if not self.is_trained:
            raise NotFittedError("the classifier suite has not been trained yet")
        return self._models[claim_property].predict(self._features_of(claim))

    def known_labels(self, claim_property: ClaimProperty) -> tuple[str, ...]:
        """Labels the classifier for ``claim_property`` can currently emit."""
        model = self._models.get(claim_property)
        if model is None:
            return ()
        return model.classes

    # ------------------------------------------------------------------ #
    # evaluation helpers (Figures 8-10)
    # ------------------------------------------------------------------ #
    def evaluate_accuracy(
        self,
        claims: Sequence[Claim],
        truths: Sequence[ClaimGroundTruth],
        top_k: int = 1,
    ) -> dict[ClaimProperty, float]:
        """Top-k accuracy of every classifier on held-out claims."""
        if len(claims) != len(truths):
            raise ValueError("claims and truths must be aligned")
        if not claims:
            return {claim_property: 0.0 for claim_property in ClaimProperty.ordered()}
        scores: dict[ClaimProperty, float] = {}
        for claim_property in ClaimProperty.ordered():
            hits = 0
            for claim, truth in zip(claims, truths):
                prediction = self.predict_property(claim, claim_property)
                top_labels = {label for label, _ in prediction.top_k(top_k)}
                if set(truth.property_labels(claim_property)) & top_labels:
                    hits += 1
            scores[claim_property] = hits / len(claims)
        return scores

    def average_accuracy(
        self,
        claims: Sequence[Claim],
        truths: Sequence[ClaimGroundTruth],
        top_k: int = 1,
    ) -> float:
        """Mean accuracy across the four classifiers (Figure 8 series)."""
        scores = self.evaluate_accuracy(claims, truths, top_k)
        return float(np.mean(list(scores.values())))
