"""The four property classifiers (Section 3.1 / 4.1).

One classifier per query property — relations, primary-key values,
attribute labels and formulas — each trained over the Figure 4 features.
The suite keeps all four aligned, retrains them as labelled claims arrive
(active learning) and exposes the ranked probability distributions consumed
by query generation and by question planning.

The suite is batch-first: features come from a shared
:class:`~repro.pipeline.feature_store.ClaimFeatureStore` (featurize once
per featurizer generation), prediction for many claims is one matrix
multiplication per property (:meth:`PropertyClassifierSuite.predict_many`),
and retraining is incremental — softmax weights warm-start from the
previous fit, and the TF-IDF vocabulary is only refit once enough unseen
n-grams have accumulated (which bumps the feature generation and restarts
the models cold).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from repro.claims.model import Claim, ClaimGroundTruth, ClaimProperty
from repro.errors import NotFittedError, TranslationError
from repro.ml.base import Prediction
from repro.ml.knn import KNearestNeighborsClassifier
from repro.ml.logistic import SoftmaxRegressionClassifier
from repro.pipeline.batch import ClaimBatchPredictions, PropertyBatch
from repro.pipeline.feature_store import ClaimFeatureStore
from repro.translation.preprocess import ClaimPreprocessor


@dataclass(frozen=True)
class TrainingExample:
    """One labelled claim: text features plus the four property labels."""

    claim: Claim
    labels: Mapping[ClaimProperty, str]

    @staticmethod
    def from_ground_truth(claim: Claim, truth: ClaimGroundTruth) -> "TrainingExample":
        return TrainingExample(
            claim=claim,
            labels={
                claim_property: truth.primary_label(claim_property)
                for claim_property in ClaimProperty.ordered()
            },
        )


@dataclass
class SuiteConfig:
    """Model-selection knobs of the classifier suite.

    ``warm_start`` and ``vocabulary_refit_threshold`` mirror the
    user-facing knobs on :class:`~repro.config.TranslationConfig`;
    :class:`~repro.translation.translator.ClaimTranslator` copies them
    from there when no explicit ``SuiteConfig`` is given.  An explicit
    ``SuiteConfig`` takes full precedence — set these fields on it
    directly rather than expecting the translation config to shine
    through.
    """

    #: Below this many training samples the k-NN fallback is used.
    parametric_threshold: int = 40
    knn_neighbors: int = 5
    learning_rate: float = 0.5
    epochs: int = 120
    l2: float = 1e-3
    seed: int = 0
    #: Warm-start softmax retrains from the previous weights.
    warm_start: bool = True
    #: Refit the TF-IDF vocabulary after this many accumulated unseen
    #: n-grams (0 disables; see ``TranslationConfig``).
    vocabulary_refit_threshold: int = 200


class PropertyClassifierSuite:
    """Trains and serves the four property classifiers."""

    def __init__(
        self,
        preprocessor: ClaimPreprocessor,
        config: SuiteConfig | None = None,
    ) -> None:
        self._preprocessor = preprocessor
        self._config = config if config is not None else SuiteConfig()
        self._models: dict[ClaimProperty, object] = {}
        self._examples: list[TrainingExample] = []
        self._store = ClaimFeatureStore(preprocessor)
        self._retrain_count = 0
        #: Feature generation the current models were trained on; a refit
        #: of the vocabulary invalidates warm starts along with the cache.
        self._models_generation: int | None = None
        #: Distinct n-grams in accumulated examples that the featurizer has
        #: never seen; crossing the threshold triggers a vocabulary refit.
        self._unseen_terms: set[str] = set()
        #: How many of ``self._examples`` are already part of the
        #: featurizer's fit corpus (avoids re-absorbing texts on refits).
        self._absorbed_example_count = 0

    # ------------------------------------------------------------------ #
    # training data management
    # ------------------------------------------------------------------ #
    @property
    def example_count(self) -> int:
        return len(self._examples)

    @property
    def retrain_count(self) -> int:
        return self._retrain_count

    @property
    def preprocessor(self) -> ClaimPreprocessor:
        return self._preprocessor

    @property
    def feature_store(self) -> ClaimFeatureStore:
        """The shared claim-feature cache (generation-invalidated)."""
        return self._store

    @property
    def feature_generation(self) -> int:
        """The featurizer generation currently being served."""
        return self._store.generation

    @property
    def pending_unseen_term_count(self) -> int:
        """Unseen n-grams accumulated toward the next vocabulary refit."""
        return len(self._unseen_terms)

    def add_examples(self, examples: Sequence[TrainingExample]) -> None:
        """Accumulate labelled claims without retraining yet."""
        self._examples.extend(examples)
        self._track_unseen_terms(examples)

    def _track_unseen_terms(self, examples: Sequence[TrainingExample]) -> None:
        if self._config.vocabulary_refit_threshold <= 0:
            return
        if not self._preprocessor.is_fitted:
            return
        self._unseen_terms |= self._preprocessor.unseen_terms(
            [example.claim for example in examples]
        )

    def _features_of(self, claim: Claim) -> np.ndarray:
        """One cached feature row (generation-tagged; never stale)."""
        return self._store.vector(claim)

    # ------------------------------------------------------------------ #
    # (re)training
    # ------------------------------------------------------------------ #
    def fit(self, examples: Sequence[TrainingExample] | None = None) -> "PropertyClassifierSuite":
        """Train all four classifiers on the accumulated examples."""
        if examples is not None:
            self._examples = list(examples)
            self._unseen_terms = set()
            self._absorbed_example_count = 0
            self._track_unseen_terms(self._examples)
        if not self._examples:
            raise TranslationError("cannot train the classifier suite without examples")
        self._maybe_refit_vocabulary()
        features = self._store.matrix([example.claim for example in self._examples])
        generation = self._store.generation
        warm_eligible = self._config.warm_start and generation == self._models_generation
        for claim_property in ClaimProperty.ordered():
            labels = [example.labels[claim_property] for example in self._examples]
            model = self._resolve_model(
                self._models.get(claim_property) if warm_eligible else None,
                len(self._examples),
                len(set(labels)),
            )
            model.fit(features, labels)
            self._models[claim_property] = model
        self._models_generation = generation
        self._retrain_count += 1
        return self

    def retrain(self, new_examples: Sequence[TrainingExample]) -> "PropertyClassifierSuite":
        """Add newly verified claims as training samples and refit (Algorithm 1)."""
        self.add_examples(new_examples)
        return self.fit()

    def _maybe_refit_vocabulary(self) -> None:
        """Absorb accumulated unseen vocabulary once it crosses the threshold.

        The refit extends the featurizer's fit corpus with the not-yet
        absorbed example texts and bumps the feature generation: the shared
        store drops every cached row and the next ``fit`` restarts the
        models cold (warm starts across feature spaces would be garbage).
        """
        threshold = self._config.vocabulary_refit_threshold
        if threshold <= 0 or not self._preprocessor.is_fitted:
            return
        if len(self._unseen_terms) < threshold:
            return
        fresh = self._examples[self._absorbed_example_count :]
        self._preprocessor.refit_with([example.claim for example in fresh])
        self._absorbed_example_count = len(self._examples)
        self._unseen_terms = set()

    def _resolve_model(self, previous: object | None, sample_count: int, class_count: int):
        """Pick the model for one property, continuing a warm fit if possible."""
        wants_parametric = (
            sample_count >= self._config.parametric_threshold and class_count >= 2
        )
        if wants_parametric and isinstance(previous, SoftmaxRegressionClassifier):
            return previous
        return self._make_model(sample_count, class_count)

    def _make_model(self, sample_count: int, class_count: int):
        if sample_count < self._config.parametric_threshold or class_count < 2:
            return KNearestNeighborsClassifier(k=min(self._config.knn_neighbors, sample_count))
        return SoftmaxRegressionClassifier(
            learning_rate=self._config.learning_rate,
            epochs=self._config.epochs,
            l2=self._config.l2,
            seed=self._config.seed,
            warm_start=self._config.warm_start,
        )

    # ------------------------------------------------------------------ #
    # prediction
    # ------------------------------------------------------------------ #
    @property
    def is_trained(self) -> bool:
        return len(self._models) == len(ClaimProperty.ordered())

    def predict(self, claim: Claim) -> dict[ClaimProperty, Prediction]:
        """Ranked label distributions for all four properties of one claim."""
        return self.predict_many([claim])[0]

    def predict_many(
        self, claims: Sequence[Claim]
    ) -> list[dict[ClaimProperty, Prediction]]:
        """Ranked predictions for every claim, from one feature matrix."""
        return self.predict_proba_many(claims).as_prediction_dicts()

    def predict_proba_many(self, claims: Sequence[Claim]) -> ClaimBatchPredictions:
        """Batch predictions as per-property probability matrices.

        The hot path of the verification loop: one feature-store lookup for
        the whole batch, then one ``X @ W`` per property.  Ranked
        per-claim :class:`~repro.ml.base.Prediction` objects are
        materialized lazily by the returned batch, typically only for the
        claims selected into the next crowd batch.
        """
        if not self.is_trained:
            raise NotFittedError("the classifier suite has not been trained yet")
        features = self._store.matrix(claims)
        by_property = {
            claim_property: PropertyBatch(
                labels=model.classes,
                probabilities=model.predict_proba_batch(features),
            )
            for claim_property, model in self._models.items()
        }
        return ClaimBatchPredictions(
            [claim.claim_id for claim in claims], by_property
        )

    def predict_property(self, claim: Claim, claim_property: ClaimProperty) -> Prediction:
        if not self.is_trained:
            raise NotFittedError("the classifier suite has not been trained yet")
        return self._models[claim_property].predict(self._features_of(claim))

    def known_labels(self, claim_property: ClaimProperty) -> tuple[str, ...]:
        """Labels the classifier for ``claim_property`` can currently emit."""
        model = self._models.get(claim_property)
        if model is None:
            return ()
        return model.classes

    # ------------------------------------------------------------------ #
    # evaluation helpers (Figures 8-10)
    # ------------------------------------------------------------------ #
    def evaluate_accuracy(
        self,
        claims: Sequence[Claim],
        truths: Sequence[ClaimGroundTruth],
        top_k: int = 1,
    ) -> dict[ClaimProperty, float]:
        """Top-k accuracy of every classifier on held-out claims."""
        if len(claims) != len(truths):
            raise ValueError("claims and truths must be aligned")
        if not claims:
            return {claim_property: 0.0 for claim_property in ClaimProperty.ordered()}
        batch = self.predict_proba_many(claims)
        scores: dict[ClaimProperty, float] = {}
        for claim_property in ClaimProperty.ordered():
            property_batch = batch.by_property[claim_property]
            hits = 0
            for index, truth in enumerate(truths):
                prediction = property_batch.prediction(index)
                top_labels = {label for label, _ in prediction.top_k(top_k)}
                if set(truth.property_labels(claim_property)) & top_labels:
                    hits += 1
            scores[claim_property] = hits / len(claims)
        return scores

    def average_accuracy(
        self,
        claims: Sequence[Claim],
        truths: Sequence[ClaimGroundTruth],
        top_k: int = 1,
    ) -> float:
        """Mean accuracy across the four classifiers (Figure 8 series)."""
        scores = self.evaluate_accuracy(claims, truths, top_k)
        return float(np.mean(list(scores.values())))
