"""Claim-to-query translation (Section 4 of the paper).

The pipeline has three stages: claim preprocessing into feature vectors
(:mod:`repro.translation.preprocess`), the four property classifiers
(:mod:`repro.translation.classifiers`), and the query-generation algorithm
(Algorithm 2, :mod:`repro.translation.querygen`).  The
:class:`~repro.translation.translator.ClaimTranslator` facade glues them
together and is the component Algorithm 1 calls for every claim.

Layering contract: layer 6 of the enforced import DAG (peer of ``store``) —
may import ``claims``, ``formulas``, ``sqlengine``,
``dataset``/``ml``/``text``, ``config`` and ``errors``, plus its peer;
never ``pipeline``/``planning`` or anything above. Enforced by reprolint;
see ``docs/architecture.md``.
"""

from repro.translation.classifiers import PropertyClassifierSuite, TrainingExample
from repro.translation.preprocess import ClaimPreprocessor, PreprocessedClaim
from repro.translation.querygen import QueryCandidate, QueryGenerationResult, QueryGenerator
from repro.translation.translator import ClaimTranslator, TranslationResult

__all__ = [
    "ClaimPreprocessor",
    "ClaimTranslator",
    "PreprocessedClaim",
    "PropertyClassifierSuite",
    "QueryCandidate",
    "QueryGenerationResult",
    "QueryGenerator",
    "TrainingExample",
    "TranslationResult",
]
