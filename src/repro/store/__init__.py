"""Out-of-core claim and feature storage (SQLite catalog + memmap matrix).

Contract: this subsystem owns *where claim data lives* once pools outgrow
RAM.  It provides

* :class:`~repro.store.backend.FeatureBackend` — the row-storage protocol
  behind :class:`~repro.pipeline.feature_store.ClaimFeatureStore`, with
  :class:`~repro.store.backend.InMemoryFeatureBackend` as the default
  all-in-RAM implementation (exactly the pre-existing dict semantics);
* :class:`~repro.store.outofcore.OutOfCoreClaimStore` — a SQLite catalog
  of claims, sections and per-generation ``(cost, utility)`` scores beside
  one ``numpy.memmap`` feature file per featurizer generation, plus the
  relational *pushdown* queries (window-function per-section aggregates
  and dominance-prune pre-filtering) that hand
  :class:`~repro.planning.engine.PlannerEngine` an already-pruned
  candidate set;
* :class:`~repro.store.outofcore.OutOfCoreFeatureBackend` — the adapter
  that plugs the out-of-core store into ``ClaimFeatureStore(backend=...)``;
* manifests: a JSON-safe description of the on-disk layout that snapshots
  record *instead of* the matrix bytes, and from which a store reattaches
  (:meth:`~repro.store.outofcore.OutOfCoreClaimStore.from_manifest`).

Allowed imports (reprolint layer 6, peer of ``translation``): the Python
standard library, ``numpy``, and the lower repro layers ``repro.errors``,
``repro.config``, ``repro.dataset``/``repro.text``/``repro.ml`` and
``repro.claims``.  It must not import ``pipeline``, ``planning`` or
anything above them — those layers call *into* the store, never the other
way around.
"""

from repro.store.backend import FeatureBackend, InMemoryFeatureBackend
from repro.store.outofcore import (
    GenerationInfo,
    OutOfCoreClaimStore,
    OutOfCoreFeatureBackend,
    SectionAggregate,
)

__all__ = [
    "FeatureBackend",
    "GenerationInfo",
    "InMemoryFeatureBackend",
    "OutOfCoreClaimStore",
    "OutOfCoreFeatureBackend",
    "SectionAggregate",
]
