"""SQLite + memmap out-of-core claim store with relational pushdown.

Layout on disk (one directory per store):

* ``claims.sqlite3`` — the catalog: one row per claim (``ord`` is the
  arrival order and doubles as the memmap row index), plus per-generation
  ``(cost, utility)`` scores and the registry of published feature
  generations.
* ``features.g<generation>.bin`` — one dense ``numpy.memmap`` matrix per
  featurizer generation, row ``ord`` holding that claim's feature vector.
  A vocabulary refit bumps the generation and *republishes*: the new file
  starts empty and fills as claims are re-featurized, while the old file
  stays intact until :meth:`OutOfCoreClaimStore.prune_generations`.
* ``written.g<generation>.bin`` — a byte-per-row sidecar marking which
  memmap rows actually hold data (the matrix is sparse-grown, so row
  presence cannot be inferred from file size).

Relational pushdown: the two hottest planner loops run *inside* SQLite
instead of materializing the pool in Python —
:meth:`OutOfCoreClaimStore.section_aggregates` computes per-section
cost/utility totals with ``SUM(...) OVER (PARTITION BY section_id)``
window aggregates, and :meth:`OutOfCoreClaimStore.pruned_candidates`
evaluates the planner's dominance prune as a window query so
:meth:`~repro.planning.engine.PlannerEngine.plan_pushdown` receives an
already-pruned candidate set.  Both prune queries return **exactly** the
set :func:`~repro.planning.engine.dominance_prune` would keep:

* pinned regime (no cost threshold): the dominance order is total, so
  ``ROW_NUMBER() OVER (PARTITION BY section_id ORDER BY weight, ord)``
  with ``weight = cost - w * utility`` (or ``-utility``) reproduces the
  per-section top-``max_batch_size`` with the same lowest-``ord``
  tie-break;
* cost-constrained regime: a claim is kept iff it has fewer than
  ``max_batch_size`` Pareto dominators (utility no worse, cost no worse,
  ties by lower ``ord``).  Counting *all* dominators equals counting
  *kept* dominators — if a dominator was itself pruned, its own ``K``
  kept dominators transitively dominate the claim — so the correlated
  ``COUNT(...) < K`` filter matches the Python sweep claim-for-claim.

Everything is stdlib ``sqlite3`` + ``numpy``; no new dependencies.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np
from numpy.typing import NDArray

from repro.errors import StorageError, StoreManifestError

_MemMap = np.memmap[Any, np.dtype[Any]]

__all__ = [
    "GenerationInfo",
    "MANIFEST_KIND",
    "MANIFEST_VERSION",
    "OutOfCoreClaimStore",
    "OutOfCoreFeatureBackend",
    "SectionAggregate",
]

MANIFEST_KIND = "repro.store/out-of-core"
MANIFEST_VERSION = 1

#: Memmap files grow in row quanta so bulk ingest does not re-truncate the
#: file once per chunk.
_ROW_GROWTH_QUANTUM = 1024

_SCHEMA = """
CREATE TABLE IF NOT EXISTS claims (
    ord        INTEGER PRIMARY KEY,
    claim_id   TEXT NOT NULL UNIQUE,
    section_id TEXT NOT NULL,
    retired    INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS claims_by_section ON claims(section_id);
CREATE TABLE IF NOT EXISTS scores (
    ord        INTEGER NOT NULL,
    generation INTEGER NOT NULL,
    cost       REAL NOT NULL,
    utility    REAL NOT NULL,
    PRIMARY KEY (ord, generation)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS feature_generations (
    generation    INTEGER PRIMARY KEY,
    dimension     INTEGER NOT NULL,
    dtype         TEXT NOT NULL,
    features_file TEXT NOT NULL,
    written_file  TEXT NOT NULL
);
"""


@dataclass(frozen=True)
class GenerationInfo:
    """One published feature generation: its memmap file pair and shape."""

    generation: int
    dimension: int
    dtype: str
    features_file: str
    written_file: str


@dataclass(frozen=True)
class SectionAggregate:
    """Per-section totals computed by a SQL window aggregate."""

    section_id: str
    claim_count: int
    total_cost: float
    total_utility: float


def _chunks(items: Sequence[str], size: int = 500) -> Iterable[Sequence[str]]:
    for start in range(0, len(items), size):
        yield items[start : start + size]


class OutOfCoreClaimStore:
    """Claims, scores and feature rows backed by SQLite and ``numpy.memmap``.

    The store is safe to share across threads: every SQLite access and
    every memmap (re)mapping happens under one reentrant lock.  Feature
    *reads* hand out zero-copy read-only views into the mapped file, so a
    100k-claim pool costs resident memory only for the pages actually
    touched — :meth:`release` flushes and drops the mappings, which is
    what tenant passivation calls instead of pickling feature bytes.
    """

    def __init__(self, directory: str | Path, *, dtype: str = "float32") -> None:
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._dtype = np.dtype(dtype)
        if self._dtype.kind != "f":
            raise StorageError(f"feature dtype must be floating, got {dtype!r}")
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self._directory / "claims.sqlite3"), check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        #: generation -> (features memmap, written memmap)
        self._maps: dict[int, tuple[_MemMap, _MemMap]] = {}
        self._closed = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def dtype(self) -> np.dtype[Any]:
        return self._dtype

    def release(self) -> None:
        """Flush and drop every memmap handle (resident pages go away).

        The store stays usable: the next feature read or write remaps the
        files on demand.  This is the passivation hook — a parked tenant
        keeps its claims on disk and holds no matrix pages in RAM.
        """
        with self._lock:
            for features, written in self._maps.values():
                features.flush()
                written.flush()
            self._maps.clear()

    def close(self) -> None:
        """Release mappings and close the SQLite connection."""
        with self._lock:
            if self._closed:
                return
            self.release()
            self._conn.close()
            self._closed = True

    def __enter__(self) -> OutOfCoreClaimStore:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _guard_open(self) -> None:
        if self._closed:
            raise StorageError(f"store at {self._directory} is closed")

    # ------------------------------------------------------------------ #
    # claim catalog
    # ------------------------------------------------------------------ #
    def register_claims(self, items: Iterable[tuple[str, str]]) -> int:
        """Record ``(claim_id, section_id)`` pairs; returns how many were new.

        Registration is idempotent — a claim keeps the ``ord`` (and the
        section) of its first registration, so memmap row indices are
        stable across re-ingestion.
        """
        rows = list(items)
        with self._lock:
            self._guard_open()
            before = self._conn.execute("SELECT COUNT(*) FROM claims").fetchone()[0]
            self._conn.executemany(
                "INSERT OR IGNORE INTO claims(claim_id, section_id) VALUES (?, ?)",
                rows,
            )
            self._conn.commit()
            after = self._conn.execute("SELECT COUNT(*) FROM claims").fetchone()[0]
        return int(after - before)

    @property
    def claim_count(self) -> int:
        with self._lock:
            self._guard_open()
            return int(self._conn.execute("SELECT COUNT(*) FROM claims").fetchone()[0])

    @property
    def pending_count(self) -> int:
        """Claims not yet retired (the planner's live pool size)."""
        with self._lock:
            self._guard_open()
            return int(
                self._conn.execute(
                    "SELECT COUNT(*) FROM claims WHERE retired = 0"
                ).fetchone()[0]
            )

    def pending_claim_ids(self) -> list[str]:
        with self._lock:
            self._guard_open()
            return [
                row[0]
                for row in self._conn.execute(
                    "SELECT claim_id FROM claims WHERE retired = 0 ORDER BY ord"
                )
            ]

    def section_ids(self) -> list[str]:
        with self._lock:
            self._guard_open()
            return [
                row[0]
                for row in self._conn.execute(
                    "SELECT DISTINCT section_id FROM claims ORDER BY section_id"
                )
            ]

    def retire(self, claim_ids: Sequence[str]) -> int:
        """Drop claims from the pending pool (they stay in the catalog)."""
        with self._lock:
            self._guard_open()
            before = self._conn.execute(
                "SELECT COUNT(*) FROM claims WHERE retired = 1"
            ).fetchone()[0]
            for chunk in _chunks(list(claim_ids)):
                marks = ",".join("?" * len(chunk))
                self._conn.execute(
                    f"UPDATE claims SET retired = 1 WHERE claim_id IN ({marks})",
                    list(chunk),
                )
            self._conn.commit()
            after = self._conn.execute(
                "SELECT COUNT(*) FROM claims WHERE retired = 1"
            ).fetchone()[0]
        return int(after - before)

    def restore_pending(self) -> None:
        """Un-retire every claim (rebuild the full pool, e.g. for replays)."""
        with self._lock:
            self._guard_open()
            self._conn.execute("UPDATE claims SET retired = 0")
            self._conn.commit()

    def _ords(
        self, claim_ids: Sequence[str], *, strict: bool = True
    ) -> dict[str, int]:
        """Map claim ids to memmap row ordinals (``strict`` = all must exist)."""
        out: dict[str, int] = {}
        with self._lock:
            self._guard_open()
            for chunk in _chunks(list(claim_ids)):
                marks = ",".join("?" * len(chunk))
                for claim_id, ordinal in self._conn.execute(
                    f"SELECT claim_id, ord FROM claims WHERE claim_id IN ({marks})",
                    list(chunk),
                ):
                    out[claim_id] = int(ordinal)
        if strict and len(out) != len(set(claim_ids)):
            missing = [claim_id for claim_id in claim_ids if claim_id not in out]
            raise StorageError(
                f"{len(missing)} claim(s) not registered in the store "
                f"(first: {missing[0]!r})"
            )
        return out

    # ------------------------------------------------------------------ #
    # feature generations (memmap files)
    # ------------------------------------------------------------------ #
    def generations(self) -> list[GenerationInfo]:
        with self._lock:
            self._guard_open()
            return [
                GenerationInfo(*row)
                for row in self._conn.execute(
                    "SELECT generation, dimension, dtype, features_file, "
                    "written_file FROM feature_generations ORDER BY generation"
                )
            ]

    def _generation_info(self, generation: int) -> GenerationInfo | None:
        row = self._conn.execute(
            "SELECT generation, dimension, dtype, features_file, written_file "
            "FROM feature_generations WHERE generation = ?",
            (generation,),
        ).fetchone()
        return GenerationInfo(*row) if row is not None else None

    def publish_generation(self, generation: int, dimension: int) -> GenerationInfo:
        """Register generation ``generation`` with feature width ``dimension``.

        Publishing is idempotent; republishing with a different dimension
        is a :class:`~repro.errors.StorageError` (the featurizer's width is
        fixed within a generation by construction).
        """
        if dimension < 1:
            raise StorageError("feature dimension must be at least 1")
        with self._lock:
            self._guard_open()
            info = self._generation_info(generation)
            if info is not None:
                if info.dimension != dimension:
                    raise StorageError(
                        f"generation {generation} already published with "
                        f"dimension {info.dimension}, not {dimension}"
                    )
                return info
            info = GenerationInfo(
                generation=generation,
                dimension=dimension,
                dtype=self._dtype.name,
                features_file=f"features.g{generation}.bin",
                written_file=f"written.g{generation}.bin",
            )
            self._conn.execute(
                "INSERT INTO feature_generations VALUES (?, ?, ?, ?, ?)",
                (
                    info.generation,
                    info.dimension,
                    info.dtype,
                    info.features_file,
                    info.written_file,
                ),
            )
            self._conn.commit()
            (self._directory / info.features_file).touch()
            (self._directory / info.written_file).touch()
            return info

    def drop_generation(self, generation: int) -> bool:
        """Delete one generation's memmap files, scores and registry row."""
        with self._lock:
            self._guard_open()
            info = self._generation_info(generation)
            if info is None:
                return False
            maps = self._maps.pop(generation, None)
            if maps is not None:
                maps[0].flush()
                maps[1].flush()
            self._conn.execute(
                "DELETE FROM feature_generations WHERE generation = ?", (generation,)
            )
            self._conn.execute("DELETE FROM scores WHERE generation = ?", (generation,))
            self._conn.commit()
            (self._directory / info.features_file).unlink(missing_ok=True)
            (self._directory / info.written_file).unlink(missing_ok=True)
            return True

    def prune_generations(self, keep_latest: int = 1) -> int:
        """Drop all but the ``keep_latest`` newest generations; returns count."""
        if keep_latest < 1:
            raise StorageError("keep_latest must be at least 1")
        with self._lock:
            self._guard_open()
            stale = [
                info.generation for info in self.generations()[: -keep_latest or None]
            ]
            dropped = 0
            for generation in stale:
                dropped += bool(self.drop_generation(generation))
            return dropped

    def _map_rows(self, generation: int) -> int:
        info = self._generation_info(generation)
        if info is None:
            return 0
        size = (self._directory / info.features_file).stat().st_size
        return size // (info.dimension * np.dtype(info.dtype).itemsize)

    def _maps_for(self, generation: int) -> tuple[_MemMap, _MemMap] | None:
        """The (features, written) mappings of a generation, or ``None`` when
        the generation was never published or holds no rows yet."""
        maps = self._maps.get(generation)
        if maps is not None:
            return maps
        info = self._generation_info(generation)
        if info is None:
            return None
        rows = self._map_rows(generation)
        if rows == 0:
            return None
        features = np.memmap(
            self._directory / info.features_file,
            dtype=np.dtype(info.dtype),
            mode="r+",
            shape=(rows, info.dimension),
        )
        written = np.memmap(
            self._directory / info.written_file,
            dtype=np.uint8,
            mode="r+",
            shape=(rows,),
        )
        self._maps[generation] = (features, written)
        return features, written

    def _grow_to(self, generation: int, rows_needed: int) -> tuple[_MemMap, _MemMap]:
        """Extend the generation's files to at least ``rows_needed`` rows."""
        info = self._generation_info(generation)
        if info is None:  # pragma: no cover - callers publish first
            raise StorageError(f"generation {generation} was never published")
        current = self._map_rows(generation)
        if current < rows_needed:
            target = max(
                rows_needed,
                current * 2,
                _ROW_GROWTH_QUANTUM,
            )
            maps = self._maps.pop(generation, None)
            if maps is not None:
                maps[0].flush()
                maps[1].flush()
            item = np.dtype(info.dtype).itemsize
            with (self._directory / info.features_file).open("r+b") as handle:
                handle.truncate(target * info.dimension * item)
            with (self._directory / info.written_file).open("r+b") as handle:
                handle.truncate(target)
        maps = self._maps_for(generation)
        assert maps is not None  # the file now has rows
        return maps

    # ------------------------------------------------------------------ #
    # feature rows
    # ------------------------------------------------------------------ #
    def write_features(
        self, generation: int, claim_ids: Sequence[str], matrix: NDArray[Any]
    ) -> None:
        """Store one feature row per claim into the generation's memmap."""
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[0] != len(claim_ids):
            raise StorageError(
                f"feature matrix shape {matrix.shape} does not match "
                f"{len(claim_ids)} claim id(s)"
            )
        if not len(claim_ids):
            return
        with self._lock:
            self._guard_open()
            self.publish_generation(generation, int(matrix.shape[1]))
            ords = self._ords(claim_ids)
            indices = np.array([ords[claim_id] for claim_id in claim_ids])
            features, written = self._grow_to(generation, int(indices.max()) + 1)
            if matrix.shape[1] != features.shape[1]:
                raise StorageError(
                    f"feature matrix has dimension {matrix.shape[1]}, "
                    f"generation {generation} is published at {features.shape[1]}"
                )
            features[indices] = matrix.astype(self._dtype, copy=False)
            written[indices] = 1

    def read_features(
        self, generation: int, claim_ids: Sequence[str]
    ) -> dict[str, NDArray[Any]]:
        """Zero-copy read-only rows for the claims present in ``generation``.

        Unregistered claims and claims never featurized under this
        generation are simply omitted, mirroring a cache miss.
        """
        with self._lock:
            self._guard_open()
            maps = self._maps_for(generation)
            if maps is None:
                return {}
            features, written = maps
            ords = self._ords(claim_ids, strict=False)
            out: dict[str, NDArray[Any]] = {}
            rows = features.shape[0]
            for claim_id in claim_ids:
                ordinal = ords.get(claim_id)
                if ordinal is None or ordinal >= rows or not written[ordinal]:
                    continue
                row = features[ordinal]
                row.flags.writeable = False
                out[claim_id] = row
            return out

    def forget_features(self, generation: int, claim_ids: Sequence[str]) -> int:
        """Clear the written flag of specific rows; returns how many were set."""
        with self._lock:
            self._guard_open()
            maps = self._maps_for(generation)
            if maps is None:
                return 0
            _, written = maps
            ords = self._ords(claim_ids, strict=False)
            rows = written.shape[0]
            indices = [
                ordinal
                for ordinal in ords.values()
                if ordinal < rows and written[ordinal]
            ]
            if indices:
                written[np.array(indices)] = 0
            return len(indices)

    def written_count(self, generation: int) -> int:
        """How many claims hold a feature row under ``generation``."""
        with self._lock:
            self._guard_open()
            maps = self._maps_for(generation)
            if maps is None:
                return 0
            return int(np.count_nonzero(maps[1]))

    # ------------------------------------------------------------------ #
    # scores
    # ------------------------------------------------------------------ #
    def write_scores(
        self,
        generation: int,
        claim_ids: Sequence[str],
        costs: Sequence[float],
        utilities: Sequence[float],
    ) -> None:
        """Upsert per-generation ``(cost, utility)`` rows for ``claim_ids``."""
        if not (len(claim_ids) == len(costs) == len(utilities)):
            raise StorageError("claim_ids, costs and utilities must align")
        with self._lock:
            self._guard_open()
            ords = self._ords(claim_ids)
            self._conn.executemany(
                "INSERT OR REPLACE INTO scores(ord, generation, cost, utility) "
                "VALUES (?, ?, ?, ?)",
                [
                    (ords[claim_id], generation, float(cost), float(utility))
                    for claim_id, cost, utility in zip(claim_ids, costs, utilities)
                ],
            )
            self._conn.commit()

    def scored_count(self, generation: int) -> int:
        with self._lock:
            self._guard_open()
            return int(
                self._conn.execute(
                    "SELECT COUNT(*) FROM scores WHERE generation = ?", (generation,)
                ).fetchone()[0]
            )

    def unscored_claim_ids(self, generation: int) -> list[str]:
        """Pending claims with no score row under ``generation``."""
        with self._lock:
            self._guard_open()
            return [
                row[0]
                for row in self._conn.execute(
                    "SELECT c.claim_id FROM claims c "
                    "LEFT JOIN scores s ON s.ord = c.ord AND s.generation = ? "
                    "WHERE c.retired = 0 AND s.ord IS NULL ORDER BY c.ord",
                    (generation,),
                )
            ]

    def scores_for(
        self, generation: int, claim_ids: Sequence[str]
    ) -> dict[str, tuple[float, float]]:
        """The stored ``(cost, utility)`` of the given claims (omitting gaps)."""
        out: dict[str, tuple[float, float]] = {}
        with self._lock:
            self._guard_open()
            for chunk in _chunks(list(claim_ids)):
                marks = ",".join("?" * len(chunk))
                for claim_id, cost, utility in self._conn.execute(
                    "SELECT c.claim_id, s.cost, s.utility FROM claims c "
                    "JOIN scores s ON s.ord = c.ord "
                    f"WHERE s.generation = ? AND c.claim_id IN ({marks})",
                    [generation, *chunk],
                ):
                    out[claim_id] = (float(cost), float(utility))
        return out

    # ------------------------------------------------------------------ #
    # relational pushdown
    # ------------------------------------------------------------------ #
    def section_aggregates(self, generation: int) -> list[SectionAggregate]:
        """Per-section pending totals via a SQL window aggregate.

        ``SUM(...) OVER (PARTITION BY section_id)`` computes every
        section's claim count, total verification cost and total utility
        in one pass inside SQLite — the planner's per-section bookkeeping
        without materializing the pool in Python.
        """
        with self._lock:
            self._guard_open()
            rows = self._conn.execute(
                "SELECT DISTINCT c.section_id, "
                "       COUNT(*) OVER w, SUM(s.cost) OVER w, SUM(s.utility) OVER w "
                "FROM claims c JOIN scores s ON s.ord = c.ord AND s.generation = ? "
                "WHERE c.retired = 0 "
                "WINDOW w AS (PARTITION BY c.section_id) "
                "ORDER BY c.section_id",
                (generation,),
            ).fetchall()
        return [
            SectionAggregate(
                section_id=row[0],
                claim_count=int(row[1]),
                total_cost=float(row[2]),
                total_utility=float(row[3]),
            )
            for row in rows
        ]

    def pruned_candidates(
        self,
        generation: int,
        max_batch_size: int,
        *,
        cost_constrained: bool,
        utility_weight: float | None,
    ) -> list[tuple[str, str, float, float]]:
        """The dominance-prune survivors, computed inside SQLite.

        Returns ``(claim_id, section_id, cost, utility)`` tuples in ``ord``
        (arrival) order — exactly the set
        :func:`~repro.planning.engine.dominance_prune` keeps for the same
        regime, so the planner can solve over this pre-filtered pool and
        produce a claim-for-claim identical selection (see the module
        docstring for the equivalence argument).
        """
        if max_batch_size < 1:
            raise StorageError("max_batch_size must be at least 1")
        with self._lock:
            self._guard_open()
            self._conn.execute("DROP TABLE IF EXISTS temp.pushdown_pool")
            self._conn.execute(
                "CREATE TEMP TABLE pushdown_pool AS "
                "SELECT c.ord AS ord, c.claim_id AS claim_id, "
                "       c.section_id AS section_id, s.cost AS cost, "
                "       s.utility AS utility "
                "FROM claims c JOIN scores s ON s.ord = c.ord AND s.generation = ? "
                "WHERE c.retired = 0",
                (generation,),
            )
            try:
                if not cost_constrained:
                    # Total order: rank by the per-claim objective weight
                    # (ties by arrival order) and keep each section's best
                    # max_batch_size — dominance_prune's exact keep set.
                    if utility_weight is None:
                        weight_expr = "-utility"
                        params: list[object] = [max_batch_size]
                    else:
                        weight_expr = "cost - ? * utility"
                        params = [float(utility_weight), max_batch_size]
                    rows = self._conn.execute(
                        "SELECT claim_id, section_id, cost, utility FROM ("
                        "  SELECT ord, claim_id, section_id, cost, utility, "
                        "  ROW_NUMBER() OVER ("
                        f"    PARTITION BY section_id ORDER BY {weight_expr}, ord"
                        "  ) AS rank FROM pushdown_pool"
                        ") WHERE rank <= ? ORDER BY ord",
                        params,
                    ).fetchall()
                else:
                    # Pareto order: keep a claim iff fewer than
                    # max_batch_size claims of its section dominate it.
                    # The index makes the correlated dominator count an
                    # index range scan, and LIMIT stops counting at K.
                    self._conn.execute(
                        "CREATE INDEX pushdown_pool_pareto ON pushdown_pool"
                        "(section_id, utility, cost, ord)"
                    )
                    rows = self._conn.execute(
                        "SELECT p.claim_id, p.section_id, p.cost, p.utility "
                        "FROM pushdown_pool p WHERE ("
                        "  SELECT COUNT(*) FROM ("
                        "    SELECT 1 FROM pushdown_pool d "
                        "    WHERE d.section_id = p.section_id "
                        "      AND d.utility >= p.utility AND d.cost <= p.cost "
                        "      AND (d.utility > p.utility OR d.cost < p.cost "
                        "           OR d.ord < p.ord) "
                        "    LIMIT ?)"
                        ") < ? ORDER BY p.ord",
                        (max_batch_size, max_batch_size),
                    ).fetchall()
            finally:
                self._conn.execute("DROP TABLE IF EXISTS temp.pushdown_pool")
        return [
            (str(row[0]), str(row[1]), float(row[2]), float(row[3])) for row in rows
        ]

    # ------------------------------------------------------------------ #
    # manifest
    # ------------------------------------------------------------------ #
    def manifest(self) -> dict[str, Any]:
        """A JSON-safe description of the on-disk layout.

        Snapshots record *this* instead of feature bytes: the manifest
        names the directory, the catalog database and every published
        generation's memmap files, which is all
        :meth:`from_manifest` needs to reattach.
        """
        with self._lock:
            self._guard_open()
            return {
                "kind": MANIFEST_KIND,
                "version": MANIFEST_VERSION,
                "directory": str(self._directory),
                "database": "claims.sqlite3",
                "dtype": self._dtype.name,
                "claim_count": self.claim_count,
                "generations": [
                    {
                        "generation": info.generation,
                        "dimension": info.dimension,
                        "dtype": info.dtype,
                        "features_file": info.features_file,
                        "written_file": info.written_file,
                    }
                    for info in self.generations()
                ],
            }

    @classmethod
    def from_manifest(cls, manifest: Mapping[str, Any]) -> OutOfCoreClaimStore:
        """Reattach to the store a manifest describes, validating the files."""
        if not isinstance(manifest, Mapping):
            raise StoreManifestError(f"manifest must be a mapping, got {manifest!r}")
        if manifest.get("kind") != MANIFEST_KIND:
            raise StoreManifestError(
                f"manifest kind {manifest.get('kind')!r} is not {MANIFEST_KIND!r}"
            )
        if manifest.get("version") != MANIFEST_VERSION:
            raise StoreManifestError(
                f"manifest version {manifest.get('version')!r} is not supported"
            )
        directory = Path(str(manifest.get("directory", "")))
        if not directory.is_dir():
            raise StoreManifestError(f"store directory {directory} does not exist")
        if not (directory / str(manifest.get("database", ""))).is_file():
            raise StoreManifestError(f"store catalog missing under {directory}")
        store = cls(directory, dtype=str(manifest.get("dtype", "float32")))
        try:
            published = {info.generation: info for info in store.generations()}
            for entry in manifest.get("generations", []):
                generation = entry.get("generation")
                info = published.get(generation)
                if info is None:
                    raise StoreManifestError(
                        f"manifest names generation {generation}, which the "
                        f"catalog at {directory} does not know"
                    )
                for name in (info.features_file, info.written_file):
                    if not (directory / name).is_file():
                        raise StoreManifestError(
                            f"generation {generation} file {name} is missing "
                            f"under {directory}"
                        )
        except StoreManifestError:
            store.close()
            raise
        return store


class OutOfCoreFeatureBackend:
    """Plugs an :class:`OutOfCoreClaimStore` into ``ClaimFeatureStore``.

    The backend implements :class:`~repro.store.backend.FeatureBackend`
    over the store's current featurizer generation.  ``reset`` (called by
    the feature store on a vocabulary refit) adopts the new generation —
    rows republish lazily into a fresh memmap file as claims are
    re-featurized, and the old generation's file survives until pruned.
    Because rows are content-addressed by ``(claim, generation)``, a
    reset back to an already-published generation (e.g. after rehydrating
    a passivated tenant) serves the existing rows without recomputation.

    The capacity bound is advisory here: rows live in the mapped file, not
    the Python heap, so "eviction" is the OS reclaiming cold pages (or
    :meth:`release` dropping all of them at once).
    """

    def __init__(self, store: OutOfCoreClaimStore, generation: int = 0) -> None:
        self._store = store
        self._generation = int(generation)

    @property
    def store(self) -> OutOfCoreClaimStore:
        return self._store

    @property
    def generation(self) -> int:
        return self._generation

    def get(self, claim_id: str) -> NDArray[Any] | None:
        return self._store.read_features(self._generation, [claim_id]).get(claim_id)

    def get_many(self, claim_ids: Sequence[str]) -> dict[str, NDArray[Any]]:
        return self._store.read_features(self._generation, claim_ids)

    def put(self, claim_id: str, row: NDArray[Any], section_id: str = "") -> None:
        self.put_many([claim_id], np.asarray(row)[None, :], [section_id])

    def put_many(
        self,
        claim_ids: Sequence[str],
        matrix: NDArray[Any],
        section_ids: Sequence[str] | None = None,
    ) -> None:
        if section_ids is None:
            section_ids = [""] * len(claim_ids)
        self._store.register_claims(zip(claim_ids, section_ids))
        self._store.write_features(self._generation, claim_ids, np.asarray(matrix))

    def forget(self, claim_ids: Sequence[str]) -> int:
        return self._store.forget_features(self._generation, claim_ids)

    def reset(self, generation: int) -> None:
        self._generation = int(generation)

    def set_capacity(self, max_rows: int | None) -> None:
        # Rows are memory-mapped, not resident: the bound is moot.
        return None

    def release(self) -> None:
        """Flush and drop the mapped pages (the passivation hook)."""
        self._store.release()

    def manifest(self) -> dict[str, Any]:
        return self._store.manifest()

    def __len__(self) -> int:
        return self._store.written_count(self._generation)
