"""Feature-row backend protocol and the default all-in-RAM backend.

:class:`~repro.pipeline.feature_store.ClaimFeatureStore` owns the caching
*policy* — generation sync, batch featurization of missing rows, read-only
row views — and delegates row *storage* to a :class:`FeatureBackend`.  The
default :class:`InMemoryFeatureBackend` preserves the store's historical
semantics exactly (a plain dict with insertion-order eviction under a
capacity bound), so a store built without an explicit backend behaves
byte-for-byte like it always did.  The out-of-core backend lives in
:mod:`repro.store.outofcore`.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any, Protocol, runtime_checkable

import numpy as np
from numpy.typing import NDArray

__all__ = ["FeatureBackend", "InMemoryFeatureBackend"]


@runtime_checkable
class FeatureBackend(Protocol):
    """Where a :class:`ClaimFeatureStore` keeps its featurized rows.

    Implementations store float rows keyed by claim id, scoped to one
    featurizer *generation* at a time: :meth:`reset` is called whenever the
    store's preprocessor generation changes, and rows written before the
    most recent reset must never be served again.  Returned rows must be
    safe to hand to many consumers (the store marks them read-only).
    """

    def get(self, claim_id: str) -> NDArray[Any] | None:
        """The stored row for one claim, or ``None`` when absent."""
        ...

    def get_many(self, claim_ids: Sequence[str]) -> dict[str, NDArray[Any]]:
        """The stored rows among ``claim_ids`` (absent ids are omitted)."""
        ...

    def put(self, claim_id: str, row: NDArray[Any], section_id: str = "") -> None:
        """Store one row (the section id lets catalog backends index it)."""
        ...

    def put_many(
        self,
        claim_ids: Sequence[str],
        matrix: NDArray[Any],
        section_ids: Sequence[str] | None = None,
    ) -> None:
        """Store one row per claim, in order (``matrix`` row ``i`` ↔ id ``i``)."""
        ...

    def forget(self, claim_ids: Sequence[str]) -> int:
        """Drop specific claims' rows; returns how many were present."""
        ...

    def reset(self, generation: int) -> None:
        """Adopt a new featurizer generation; previously stored rows are dead."""
        ...

    def set_capacity(self, max_rows: int | None) -> None:
        """Bound the resident row count (``None`` = unbounded).

        Backends whose rows are not resident (memory-mapped files) may
        treat this as advisory.
        """
        ...

    def __len__(self) -> int:
        """How many rows of the current generation are stored."""
        ...


class InMemoryFeatureBackend:
    """The historical all-in-RAM row store: a dict with FIFO-ish eviction.

    Insertion order approximates recency on the verification hot path —
    each batch re-requests the pending pool, and rows it still needs are
    re-inserted right after an eviction makes room — so evicting the
    oldest insertion is the same policy the pre-backend store used.
    """

    def __init__(self, max_rows: int | None = None) -> None:
        self._rows: dict[str, NDArray[Any]] = {}
        self._max_rows = max_rows

    def get(self, claim_id: str) -> NDArray[Any] | None:
        return self._rows.get(claim_id)

    def get_many(self, claim_ids: Sequence[str]) -> dict[str, NDArray[Any]]:
        rows = self._rows
        return {
            claim_id: rows[claim_id] for claim_id in claim_ids if claim_id in rows
        }

    def put(self, claim_id: str, row: NDArray[Any], section_id: str = "") -> None:
        self._rows[claim_id] = row
        self._evict_over_capacity()

    def put_many(
        self,
        claim_ids: Sequence[str],
        matrix: NDArray[Any],
        section_ids: Sequence[str] | None = None,
    ) -> None:
        for index, claim_id in enumerate(claim_ids):
            self._rows[claim_id] = matrix[index]
            self._evict_over_capacity()

    def forget(self, claim_ids: Sequence[str]) -> int:
        dropped = 0
        for claim_id in claim_ids:
            if self._rows.pop(claim_id, None) is not None:
                dropped += 1
        return dropped

    def reset(self, generation: int) -> None:
        self._rows.clear()

    def set_capacity(self, max_rows: int | None) -> None:
        self._max_rows = max_rows
        self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        if self._max_rows is None:
            return
        while len(self._rows) > self._max_rows:
            self._rows.pop(next(iter(self._rows)))

    def __len__(self) -> int:
        return len(self._rows)
