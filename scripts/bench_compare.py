#!/usr/bin/env python
"""Benchmark regression gate: diff a fresh run against a committed baseline.

CI copies the committed ``BENCH_*.json`` baselines aside, re-runs the quick
benchmarks, and then calls this script once per tracked metric::

    python scripts/bench_compare.py baseline.json fresh.json \\
        --key batch_over_single_speedup --max-drop 0.25

A second mode gates the *shape* of a metric series instead of one value:
``--non-decreasing`` takes comma-separated dotted keys and fails when the
fresh run's series inverts (each value must reach the previous one, give
or take ``--tolerance``).  The serving gate uses it to keep the tenant
scaling curve monotone::

    python scripts/bench_compare.py baseline.json fresh.json \\
        --non-decreasing tenants.1.claims_per_second,tenants.4.claims_per_second,tenants.16.claims_per_second

Exit codes: 0 when the fresh value is within the allowed drop (or the
series is monotone), 1 on a regression beyond ``--max-drop`` (or an
inverted series), 2 on unusable inputs (missing file, missing key,
non-numeric value).  The bench job stays ``continue-on-error`` at the job
level, so a regression marks the job red-but-advisory instead of blocking
the merge.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


class _UnusableInput(Exception):
    """Input problems (exit code 2, distinct from a regression's 1)."""


def _load_metric(path: Path, key: str) -> float:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise _UnusableInput(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise _UnusableInput(f"{path} is not valid JSON: {error}") from error
    value = payload
    walked: list[str] = []
    for part in key.split("."):
        walked.append(part)
        if not isinstance(value, dict):
            raise _UnusableInput(
                f"{path} has no key {key!r}: {'.'.join(walked[:-1])!r} "
                f"is not an object"
            )
        if part not in value:
            available = ", ".join(sorted(value)) or "<none>"
            raise _UnusableInput(
                f"{path} has no key {key!r} (missing {'.'.join(walked)!r}; "
                f"available at that level: {available})"
            )
        value = value[part]
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise _UnusableInput(f"{path}:{key} is not numeric: {value!r}")
    return float(value)


def _check_non_decreasing(path: Path, keys: list[str], tolerance: float) -> int:
    """Exit-code check that the series of ``keys`` in ``path`` is monotone.

    Each value must reach at least ``(1 - tolerance)`` of its predecessor;
    the series inverting beyond that is a regression (exit 1).
    """
    try:
        values = [_load_metric(path, key) for key in keys]
    except _UnusableInput as error:
        print(f"bench_compare: {error}", file=sys.stderr)
        return 2
    inversions = [
        (keys[index - 1], values[index - 1], keys[index], values[index])
        for index in range(1, len(values))
        if values[index] < values[index - 1] * (1.0 - tolerance)
    ]
    series = ", ".join(
        f"{key}={value:.3f}" for key, value in zip(keys, values)
    )
    if inversions:
        for before_key, before, after_key, after in inversions:
            print(
                f"bench_compare [REGRESSION] curve inverts: {after_key} "
                f"({after:.3f}) < {before_key} ({before:.3f}) beyond "
                f"tolerance {tolerance:.0%}"
            )
        return 1
    print(
        f"bench_compare [OK] non-decreasing series ({series}) "
        f"with tolerance {tolerance:.0%}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("fresh", type=Path, help="freshly generated JSON")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--key",
        help="dotted path of the higher-is-better metric to compare",
    )
    mode.add_argument(
        "--non-decreasing",
        metavar="KEYS",
        help=(
            "comma-separated dotted paths forming a series that must be "
            "monotone non-decreasing in the fresh run (the baseline file "
            "is not consulted in this mode)"
        ),
    )
    parser.add_argument(
        "--max-drop",
        type=float,
        default=0.25,
        help="allowed fractional drop below the baseline (default 0.25)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help=(
            "fractional slack each series value may fall below its "
            "predecessor in --non-decreasing mode (default 0, strict)"
        ),
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.max_drop < 1.0:
        parser.error("--max-drop must be in [0, 1)")
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")
    if args.non_decreasing is not None:
        keys = [key.strip() for key in args.non_decreasing.split(",") if key.strip()]
        if len(keys) < 2:
            parser.error("--non-decreasing needs at least two comma-separated keys")
        return _check_non_decreasing(args.fresh, keys, args.tolerance)

    try:
        baseline = _load_metric(args.baseline, args.key)
        fresh = _load_metric(args.fresh, args.key)
        # The tracked metrics are higher-is-better ratios/rates; a zero or
        # negative baseline makes "fractional drop" meaningless, so it is
        # an unusable input, not a pass or a regression.
        if baseline <= 0.0:
            raise _UnusableInput(
                f"{args.baseline}:{args.key} baseline must be positive "
                f"for a drop comparison, got {baseline!r}"
            )
    except _UnusableInput as error:
        print(f"bench_compare: {error}", file=sys.stderr)
        return 2
    floor = baseline * (1.0 - args.max_drop)
    change = (fresh - baseline) / baseline
    verdict = "OK" if fresh >= floor else "REGRESSION"
    print(
        f"bench_compare [{verdict}] {args.key}: baseline {baseline:.3f}, "
        f"fresh {fresh:.3f} ({change:+.1%}), floor {floor:.3f} "
        f"(max drop {args.max_drop:.0%})"
    )
    return 0 if fresh >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
