#!/usr/bin/env python
"""Fail when gateway processes (or their sockets) outlive the test suite.

CI runs this with ``if: always()`` after the gateway e2e job: a
``python -m repro.gateway`` process still alive at that point means a
test leaked a subprocess — the suite's teardown guarantees are broken
even if every assertion passed.  Exit codes: 0 clean, 1 orphans found,
0 with a notice on platforms without ``/proc`` (the check is
Linux-CI-shaped by design).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

def _is_gateway(argv: list[str]) -> bool:
    """True for ``python [...] -m repro.gateway ...`` processes only.

    Matching whole argv tokens (not substrings of the joined command
    line) keeps shells and editors whose command text merely *mentions*
    the module from tripping the check.
    """
    if not argv or "python" not in Path(argv[0]).name:
        return False
    for index, arg in enumerate(argv[:-1]):
        if arg == "-m" and argv[index + 1] == "repro.gateway":
            return True
    return False


def find_orphans() -> list[tuple[int, str]]:
    """``(pid, cmdline)`` for every live gateway process."""
    proc = Path("/proc")
    if not proc.is_dir():
        return []
    me = os.getpid()
    orphans: list[tuple[int, str]] = []
    for entry in proc.iterdir():
        if not entry.name.isdigit():
            continue
        pid = int(entry.name)
        if pid == me:
            continue
        try:
            raw = (entry / "cmdline").read_bytes()
        except OSError:
            continue  # the process exited while we scanned
        argv = [arg for arg in raw.decode("utf-8", "replace").split("\x00") if arg]
        if _is_gateway(argv):
            orphans.append((pid, " ".join(argv)))
    return orphans


def main() -> int:
    if not Path("/proc").is_dir():
        print("check_orphans: no /proc on this platform; skipping")
        return 0
    orphans = find_orphans()
    if orphans:
        print(f"check_orphans: {len(orphans)} orphaned gateway process(es):")
        for pid, cmdline in orphans:
            print(f"  pid {pid}: {cmdline}")
        return 1
    print("check_orphans: no gateway processes left behind")
    return 0


if __name__ == "__main__":
    sys.exit(main())
