#!/usr/bin/env python
"""Dead-link checker for the documentation tree (stdlib only).

Scans Markdown files for inline links and images (``[text](target)`` /
``![alt](target)``) plus reference-style definitions (``[label]: target``)
and fails when a *relative* target does not exist on disk.  External
schemes (``http(s)://``, ``mailto:``), in-page anchors (``#section``) and
badge endpoints the repository cannot know about (``../../actions/...``)
are skipped; a relative target's ``#fragment`` suffix is ignored, but the
file part must exist.

CI runs this as a blocking step over ``docs/**/*.md``, ``README.md`` and
the other root-level Markdown pages, so the docs cannot silently rot as
files move: a page that links to a renamed neighbour fails the build.

Usage::

    python scripts/check_docs.py [root]

Exit status 0 when every relative link resolves, 1 otherwise (each dead
link is listed as ``file:line: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

__all__ = ["dead_links", "iter_doc_files", "main"]

#: Inline links/images.  Targets with spaces plus an optional "title" part
#: are cut at the first whitespace, which is what Markdown does too.
_INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference-style definitions: [label]: target
_REFERENCE_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)")
_FENCE = re.compile(r"^\s*(```|~~~)")

#: Root-level Markdown pages checked in addition to docs/**/*.md.
_ROOT_PAGES = ("README.md", "ROADMAP.md", "CHANGES.md", "PAPER.md", "PAPERS.md")


def iter_doc_files(root: Path) -> list[Path]:
    """Every Markdown file the checker covers, sorted for stable output."""
    files = {path for path in (root / "docs").rglob("*.md")}
    for name in _ROOT_PAGES:
        candidate = root / name
        if candidate.is_file():
            files.add(candidate)
    return sorted(files)


def _is_external(target: str) -> bool:
    if target.startswith(("http://", "https://", "mailto:", "#")):
        return True
    # CI badge routes resolve on the forge, not in the checkout.
    return "/actions/" in target


def _targets(text: str) -> list[tuple[int, str]]:
    """``(line_number, target)`` for every link in ``text`` (1-based)."""
    found: list[tuple[int, str]] = []
    in_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _INLINE_LINK.finditer(line):
            found.append((line_number, match.group(1)))
        reference = _REFERENCE_DEF.match(line)
        if reference is not None:
            found.append((line_number, reference.group(1)))
    return found


def dead_links(files: list[Path], root: Path) -> list[tuple[Path, int, str]]:
    """Every ``(file, line, target)`` whose relative target does not exist."""
    dead: list[tuple[Path, int, str]] = []
    for path in files:
        text = path.read_text(encoding="utf-8")
        for line_number, target in _targets(text):
            if _is_external(target):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if relative.startswith("/"):
                resolved = root / relative.lstrip("/")
            else:
                resolved = path.parent / relative
            if not resolved.exists():
                dead.append((path, line_number, target))
    return dead


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    root = Path(arguments[0]) if arguments else Path(__file__).resolve().parent.parent
    files = iter_doc_files(root)
    broken = dead_links(files, root)
    for path, line_number, target in broken:
        try:
            shown = path.relative_to(root)
        except ValueError:
            shown = path
        print(f"{shown}:{line_number}: dead link -> {target}")
    print(
        f"check_docs: {len(files)} file(s), "
        f"{len(broken)} dead relative link(s)"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    raise SystemExit(main())
