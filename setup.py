"""Legacy setup entry point.

The offline environment has no ``wheel`` package, so PEP 517 editable
installs fail; keeping a ``setup.py`` lets ``pip install -e . --no-use-pep517``
fall back to the classic ``setup.py develop`` path.
"""

from setuptools import setup

setup()
